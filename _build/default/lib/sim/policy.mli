(** Work-stealing policies — one per model variant in the paper.

    Each constructor mirrors a Section of the paper; the simulator
    implements the exact discipline whose [n → ∞] limit the corresponding
    {!Meanfield} model describes, so the two can be compared table-style as
    the paper does. *)

type t =
  | No_stealing  (** Independent M/M/1 queues (baseline of §2.2). *)
  | On_empty of { threshold : int; choices : int; steal_count : int }
      (** A processor that completes its last task probes [choices]
          uniformly random victims (with replacement, excluding itself) and
          steals [steal_count] tasks from the most loaded one if that
          victim holds at least [threshold] tasks. Covers §2.2
          ([threshold = 2, choices = 1, steal_count = 1]), §2.3 (larger
          [threshold]), §3.3 ([choices = d]) and §3.4
          ([steal_count = k]). *)
  | Preemptive of { begin_at : int; offset : int }
      (** §2.4: after any completion that leaves it with at most
          [begin_at] tasks, a processor with [i] tasks steals one task
          from a random victim holding at least [i + offset] tasks. *)
  | Repeated of { retry_rate : float; threshold : int }
      (** §2.5: as On_empty with one choice, but an empty processor keeps
          retrying at exponential rate [retry_rate] until it gets a task
          (by theft or arrival). *)
  | Transfer of { transfer_rate : float; threshold : int; stages : int }
      (** §3.2: a successful steal removes the task from the victim
          immediately but delivers it after a delay of mean
          [1/transfer_rate] — exponential when [stages = 1] (the paper's
          displayed system), Erlang([stages]) for near-constant delays
          per §3.1's method of stages. A thief with a delivery in flight
          does not steal again; waiting processors remain valid
          victims. *)
  | Rebalance of { rate : int -> float }
      (** §3.4 (Rudolph–Slivkin-Allalouf–Upfal): at exponential rate
          [rate load] a processor splits its load evenly with a uniformly
          random partner, the initially larger side keeping the ceiling. *)
  | Steal_half of { threshold : int; choices : int }
      (** §3.4's adaptive variant (the Cilk-style discipline): on
          emptying, steal [⌊v/2⌋] tasks from the most loaded of [choices]
          probes if its load [v] is at least [threshold]. *)
  | Ring_steal of { threshold : int; radius : int }
      (** Locality-restricted stealing (the paper deliberately ignores
          locality; this quantifies its cost): a thief probes one uniform
          victim among its [2·radius] nearest ring neighbours. As
          [radius → n/2] this approaches On_empty with one choice. *)

val simple : t
(** [On_empty { threshold = 2; choices = 1; steal_count = 1 }] — the
    §2.2 system. *)

val validate : t -> unit
(** @raise Invalid_argument on malformed parameters (negative rates,
    [threshold < 2], [steal_count < 1], …). *)

val pp : Format.formatter -> t -> unit
