type t =
  | No_stealing
  | On_empty of { threshold : int; choices : int; steal_count : int }
  | Preemptive of { begin_at : int; offset : int }
  | Repeated of { retry_rate : float; threshold : int }
  | Transfer of { transfer_rate : float; threshold : int; stages : int }
  | Rebalance of { rate : int -> float }
  | Steal_half of { threshold : int; choices : int }
  | Ring_steal of { threshold : int; radius : int }

let simple = On_empty { threshold = 2; choices = 1; steal_count = 1 }

let validate = function
  | No_stealing -> ()
  | On_empty { threshold; choices; steal_count } ->
      if threshold < 2 then
        invalid_arg "Policy.On_empty: threshold must be at least 2";
      if choices < 1 then
        invalid_arg "Policy.On_empty: choices must be at least 1";
      if steal_count < 1 then
        invalid_arg "Policy.On_empty: steal_count must be at least 1";
      if steal_count >= threshold then
        invalid_arg "Policy.On_empty: steal_count must be below threshold"
  | Preemptive { begin_at; offset } ->
      if begin_at < 0 then
        invalid_arg "Policy.Preemptive: begin_at must be non-negative";
      if offset < begin_at + 2 then
        invalid_arg "Policy.Preemptive: need offset >= begin_at + 2"
  | Repeated { retry_rate; threshold } ->
      if retry_rate < 0.0 then
        invalid_arg "Policy.Repeated: retry_rate must be non-negative";
      if threshold < 2 then
        invalid_arg "Policy.Repeated: threshold must be at least 2"
  | Transfer { transfer_rate; threshold; stages } ->
      if transfer_rate <= 0.0 then
        invalid_arg "Policy.Transfer: transfer_rate must be positive";
      if threshold < 2 then
        invalid_arg "Policy.Transfer: threshold must be at least 2";
      if stages < 1 then
        invalid_arg "Policy.Transfer: stages must be at least 1"
  | Rebalance _ -> ()
  | Steal_half { threshold; choices } ->
      if threshold < 2 then
        invalid_arg "Policy.Steal_half: threshold must be at least 2";
      if choices < 1 then
        invalid_arg "Policy.Steal_half: choices must be at least 1"
  | Ring_steal { threshold; radius } ->
      if threshold < 2 then
        invalid_arg "Policy.Ring_steal: threshold must be at least 2";
      if radius < 1 then
        invalid_arg "Policy.Ring_steal: radius must be at least 1"

let pp ppf = function
  | No_stealing -> Format.fprintf ppf "no-stealing"
  | On_empty { threshold; choices; steal_count } ->
      Format.fprintf ppf "on-empty(T=%d, d=%d, k=%d)" threshold choices
        steal_count
  | Preemptive { begin_at; offset } ->
      Format.fprintf ppf "preemptive(B=%d, T=%d)" begin_at offset
  | Repeated { retry_rate; threshold } ->
      Format.fprintf ppf "repeated(r=%g, T=%d)" retry_rate threshold
  | Transfer { transfer_rate; threshold; stages } ->
      if stages = 1 then
        Format.fprintf ppf "transfer(r=%g, T=%d)" transfer_rate threshold
      else
        Format.fprintf ppf "transfer(r=%g, T=%d, stages=%d)" transfer_rate
          threshold stages
  | Rebalance _ -> Format.fprintf ppf "rebalance"
  | Steal_half { threshold; choices } ->
      Format.fprintf ppf "steal-half(T=%d, d=%d)" threshold choices
  | Ring_steal { threshold; radius } ->
      Format.fprintf ppf "ring-steal(T=%d, radius=%d)" threshold radius
