open Prob

type fidelity = { runs : int; horizon : float; warmup : float }

let paper_fidelity = { runs = 10; horizon = 100_000.0; warmup = 10_000.0 }
let default_fidelity = { runs = 3; horizon = 20_000.0; warmup = 2_000.0 }
let quick_fidelity = { runs = 2; horizon = 4_000.0; warmup = 500.0 }

type summary = {
  runs : int;
  mean_sojourn : float;
  sojourn_ci95 : float;
  mean_load : float;
  steal_success_rate : float;
  per_run : Cluster.result array;
}

let summarize (results : Cluster.result array) =
  let acc = Stats.create () in
  let load_acc = Stats.create () in
  let attempts = ref 0 and successes = ref 0 in
  Array.iter
    (fun (r : Cluster.result) ->
      if not (Float.is_nan r.Cluster.mean_sojourn) then
        Stats.add acc r.Cluster.mean_sojourn;
      if not (Float.is_nan r.Cluster.mean_load) then
        Stats.add load_acc r.Cluster.mean_load;
      attempts := !attempts + r.Cluster.steal_attempts;
      successes := !successes + r.Cluster.steal_successes)
    results;
  {
    runs = Array.length results;
    mean_sojourn = Stats.mean acc;
    sojourn_ci95 = Stats.ci95_halfwidth acc;
    mean_load = Stats.mean load_acc;
    steal_success_rate =
      (if !attempts = 0 then nan
       else float_of_int !successes /. float_of_int !attempts);
    per_run = results;
  }

let replicate ~seed ~(fidelity : fidelity) config =
  if fidelity.runs < 1 then invalid_arg "Runner.replicate: need runs >= 1";
  let root = Rng.create ~seed in
  let results =
    Array.init fidelity.runs (fun _ ->
        let rng = Rng.split root in
        let sim = Cluster.create ~rng config in
        Cluster.run sim ~horizon:fidelity.horizon ~warmup:fidelity.warmup)
  in
  summarize results

let replicate_static ~seed ~runs config =
  if runs < 1 then invalid_arg "Runner.replicate_static: need runs >= 1";
  let root = Rng.create ~seed in
  let results =
    Array.init runs (fun _ ->
        let rng = Rng.split root in
        let sim = Cluster.create ~rng config in
        Cluster.run_static sim)
  in
  summarize results
