(** Replicated simulation runs.

    The paper averages 10 independent simulations of 100,000 seconds with
    the first 10,000 discarded; this module reproduces that protocol with
    configurable fidelity. Each replication draws its stream from the root
    seed by splitting, so a summary is reproducible from
    [(seed, config, fidelity)] alone. *)

type fidelity = {
  runs : int;  (** Independent replications. *)
  horizon : float;  (** Simulated seconds per replication. *)
  warmup : float;  (** Discarded prefix. *)
}

val paper_fidelity : fidelity
(** The paper's protocol: 10 runs × 100,000 s, 10,000 s warm-up. *)

val default_fidelity : fidelity
(** 3 runs × 20,000 s, 2,000 s warm-up — minutes-scale for the full bench
    suite while staying well within the tables' simulation noise. *)

val quick_fidelity : fidelity
(** 2 runs × 4,000 s, 500 s warm-up — smoke-test scale. *)

type summary = {
  runs : int;
  mean_sojourn : float;  (** Mean over replications of per-run means. *)
  sojourn_ci95 : float;
      (** 95% half-width over replications (normal approximation); [nan]
          for a single run. *)
  mean_load : float;  (** Mean over replications of time-average load. *)
  steal_success_rate : float;
      (** Successful steals / attempts, pooled; [nan] if no attempts. *)
  per_run : Cluster.result array;
}

val replicate :
  seed:int -> fidelity:fidelity -> Cluster.config -> summary
(** Run [fidelity.runs] independent simulations of [config]. *)

val replicate_static : seed:int -> runs:int -> Cluster.config -> summary
(** Static variant: each run drains the seeded load to empty;
    [mean_sojourn] aggregates sojourns, and the per-run [makespan]s carry
    the drain times. *)
