(** Double-ended queue of unboxed floats.

    Task queues in the simulator hold one float per task (its arrival
    stamp): tasks are served FIFO from the front while thieves steal from
    the back, exactly the discipline of Section 2.1. Ring-buffer backed so
    both ends are O(1) amortised and nothing boxes. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

val push_back : t -> float -> unit
(** Enqueue a new arrival. *)

val pop_front : t -> float
(** Dequeue the oldest task (next to serve). @raise Not_found if empty. *)

val pop_back : t -> float
(** Remove the newest task (the one a thief steals).
    @raise Not_found if empty. *)

val peek_front : t -> float
(** @raise Not_found if empty. *)

val clear : t -> unit

val iter : (float -> unit) -> t -> unit
(** Front-to-back iteration. *)
