type t = {
  name : string;
  paper_ref : string;
  print : Scope.t -> Format.formatter -> unit;
}

let all =
  [
    {
      name = "table1";
      paper_ref = "Table 1: simplest WS model, simulations vs estimates";
      print = Table1.print;
    };
    {
      name = "table2";
      paper_ref = "Table 2: constant service times via Erlang stages";
      print = Table2.print;
    };
    {
      name = "table3";
      paper_ref = "Table 3: transfer times, threshold selection";
      print = Table3.print;
    };
    {
      name = "table4";
      paper_ref = "Table 4: one victim choice vs two";
      print = Table4.print;
    };
    {
      name = "threshold";
      paper_ref = "E5: threshold (2.3) and preemptive (2.4) stealing";
      print = Exp_threshold.print;
    };
    {
      name = "repeated";
      paper_ref = "E6: repeated steal attempts (2.5)";
      print = Exp_repeated.print;
    };
    {
      name = "multisteal";
      paper_ref = "E7: multi-task steals and pairwise rebalancing (3.4)";
      print = Exp_multisteal.print;
    };
    {
      name = "hetero";
      paper_ref = "E8: heterogeneous speeds and static drain (3.5)";
      print = Exp_hetero.print;
    };
    {
      name = "stability";
      paper_ref = "E9: L1 stability and convergence (Section 4)";
      print = Exp_stability.print;
    };
    {
      name = "sharing";
      paper_ref = "E10 (extension): work sharing vs work stealing vs both";
      print = Exp_sharing.print;
    };
    {
      name = "ablation";
      paper_ref = "E11 (ablation): truncation depth, integrator, acceleration";
      print = Exp_ablation.print;
    };
    {
      name = "batch";
      paper_ref =
        "E12 (extension): bursty arrivals and service variability (3.1)";
      print = Exp_batch.print;
    };
    {
      name = "locality";
      paper_ref =
        "E13 (extension): ring-locality stealing vs uniform victims";
      print = Exp_locality.print;
    };
    {
      name = "transient";
      paper_ref = "E14: trajectory-level ODE vs simulation (Kurtz limit)";
      print = Exp_transient.print;
    };
  ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = name) all

let run_all scope ppf =
  List.iter
    (fun e ->
      Format.fprintf ppf "=== %s — %s ===@.@." e.name e.paper_ref;
      e.print scope ppf)
    all
