(** Table 3 of the paper: transfer times (r = 0.25), thresholds T = 3…6.

    Simulations and fixed-point estimates of the two-vector transfer-time
    model of Section 3.2, at n = 128 (the paper reports only that size).
    The payoff is threshold selection: the rough rule T ≈ 1/r + 1 = 5 is
    optimal only at moderate loads — the fixed points identify the true
    best threshold per arrival rate, matching the simulations. *)

type entry = { sim : float; estimate : float; paper_sim : float; paper_est : float }

type row = {
  lambda : float;
  per_threshold : (int * entry) list;  (** Keyed by T ∈ {3,4,5,6}. *)
  best_threshold_est : int;  (** argmin of the estimates. *)
  best_threshold_sim : int;  (** argmin of the simulations. *)
}

val thresholds : int list
val transfer_rate : float

val compute : Scope.t -> row list
val print : Scope.t -> Format.formatter -> unit
