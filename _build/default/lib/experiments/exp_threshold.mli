(** Experiment E5: threshold and preemptive stealing (§2.3–§2.4).

    The paper derives these two variants' limiting systems but tabulates
    neither; this experiment generates the numbers the analysis implies
    and validates them against simulation:

    - expected time vs. threshold T (closed form, ODE, simulation);
    - the geometric-tail claim: fitted decay ratio of the fixed point vs.
      the predicted [λ/(1+λ-π₂)];
    - preemptive stealing (B > 0) vs. plain threshold stealing, with the
      predicted [λ/(1+λ-π_{B+2})] tail ratio. *)

type threshold_row = {
  lambda : float;
  threshold : int;
  exact : float;  (** Closed-form fixed-point mean time. *)
  ode : float;  (** ODE-relaxation mean time (consistency check). *)
  sim : float;  (** Simulated mean sojourn at the largest scope size. *)
  ratio_predicted : float;
  ratio_fitted : float;
}

type preemptive_row = {
  lambda : float;
  begin_at : int;
  offset : int;
  ode : float;
  sim : float;
  ratio_predicted : float;
  ratio_fitted : float;
}

val compute_threshold : Scope.t -> threshold_row list
val compute_preemptive : Scope.t -> preemptive_row list
val print : Scope.t -> Format.formatter -> unit
