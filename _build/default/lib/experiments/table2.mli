(** Table 2 of the paper: constant service times (T = 2).

    Simulations run the {e true} constant-service system; estimates come
    from the Erlang method-of-stages differential equations with c = 10
    and c = 20 stages (Section 3.1). The table shows both that the stage
    approximation predicts the constant-service system accurately and that
    constant service beats exponential service (compare Table 1). *)

type row = {
  lambda : float;
  sims : (int * float) list;  (** Deterministic-service simulations. *)
  estimate_c10 : float;
  estimate_c20 : float;
  paper_sim128 : float;
  paper_c10 : float;
  paper_c20 : float;
}

val compute : Scope.t -> row list
val print : Scope.t -> Format.formatter -> unit
