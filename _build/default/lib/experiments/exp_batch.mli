(** Experiment E12: bursty (batch) arrivals at fixed utilisation
    (extension of §3.1's varying-arrival-distribution remark).

    Arrival events deliver geometric batches of mean [m]; the event rate
    is scaled so utilisation [ρ = rate·m] stays fixed. Measures how much
    burstiness costs under work stealing, and whether the mean-field
    batch model tracks the simulation. Includes the high-variability
    service counterpart ({!Meanfield.Hyperexp_ws}) for the same fixed
    utilisation, so both directions of §3.1 are in one table. *)

type row = {
  label : string;
  utilization : float;
  model : float;
  sim : float;
}

val compute : Scope.t -> row list
val print : Scope.t -> Format.formatter -> unit
