(** Experiment E7: stealing several tasks at once, and pairwise
    rebalancing (§3.4).

    With a high threshold and free transfers, stealing [k > 1] tasks per
    success should equalise loads better — the section's qualitative
    claim, quantified here for [k ∈ {1,2,3}] at [T = 6]. The second part
    exercises the Rudolph–Slivkin-Allalouf–Upfal-style rebalancing model
    at several rates, against both simulation and the no-balancing M/M/1
    baseline. *)

type multisteal_row = {
  lambda : float;
  steal_count : int;
  ode : float;
  sim : float;
}

type rebalance_row = {
  lambda : float;
  rate : float;
  ode : float;
  sim : float;
  mm1 : float;  (** No-balancing baseline [1/(1-λ)]. *)
}

val threshold : int
val compute_multisteal : Scope.t -> multisteal_row list
val compute_rebalance : Scope.t -> rebalance_row list
val print : Scope.t -> Format.formatter -> unit
