(** Table 4 of the paper: one victim choice vs. two (T = 2, n = 128).

    Reproduces the comparison of Section 3.3: two choices improve the
    expected time — markedly near saturation — but a single choice already
    captures most of the achievable gain. *)

type row = {
  lambda : float;
  sim_1choice : float;
  sim_2choices : float;
  estimate_2choices : float;
  paper_sim_1choice : float;
  paper_sim_2choices : float;
  paper_estimate : float;
}

val compute : Scope.t -> row list
val print : Scope.t -> Format.formatter -> unit
