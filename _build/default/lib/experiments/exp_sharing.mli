(** Experiment E10: work sharing vs. work stealing (extension).

    The paper's introduction contrasts work stealing (idle processors pull)
    with work sharing (loaded processors push / arrivals are routed), and
    §3.3 borrows the power of two choices from the sharing literature.
    This experiment puts the two — and their combination — side by side at
    equal parameters: random placement (M/M/1), two-choice placement
    (supermarket), simple stealing, and two-choice placement {e with}
    stealing, each as a mean-field fixed point and an n-processor
    simulation, with tail latencies. *)

type row = {
  lambda : float;
  discipline : string;
  model : float;  (** Mean-field fixed-point E[T]. *)
  sim : float;
  sim_p99 : float;  (** Simulated 99th-percentile sojourn. *)
}

val compute : Scope.t -> row list
val print : Scope.t -> Format.formatter -> unit
