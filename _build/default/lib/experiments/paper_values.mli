(** The numbers printed in the paper's tables, embedded for side-by-side
    "paper vs reproduced" comparison in experiment output and tests.

    All values are expected times in system, transcribed from Tables 1–4
    of Mitzenmacher, "Analyses of Load Stealing Models Based on
    Differential Equations", SPAA 1998. *)

val table1_lambdas : float list
(** [0.50; 0.70; 0.80; 0.90; 0.95; 0.99]. *)

val table1_estimate : float -> float
(** Paper's fixed-point estimate for the simple WS model at the given
    arrival rate. @raise Not_found for a λ outside {!table1_lambdas}. *)

val table1_sim128 : float -> float
(** Paper's Sim(128) column. @raise Not_found likewise. *)

val table2_estimate : stages:int -> float -> float
(** Paper's constant-service estimates ([stages] ∈ {10, 20}).
    @raise Not_found for unlisted parameters. *)

val table2_sim128 : float -> float
(** Paper's constant-service Sim(128) column. *)

val table3_lambdas : float list
(** [0.50; 0.70; 0.80; 0.90; 0.95]. *)

val table3_estimate : threshold:int -> float -> float
(** Paper's transfer-time estimates ([threshold] ∈ {3,4,5,6},
    [r = 0.25]). @raise Not_found for unlisted parameters. *)

val table3_sim128 : threshold:int -> float -> float

val table4_estimate_2choices : float -> float
(** Paper's two-choice estimates (T = 2). *)

val table4_sim128_2choices : float -> float
