(** Experiment E9: convergence and stability of the fixed points (§4).

    Theorems 1–2 prove L1-stability for the simple and threshold systems
    when [π₂ < 1/2] (equivalently [λ ≲ 0.823] for the simple system). The
    paper recommends checking convergence numerically from various
    starting points; this experiment does exactly that: for arrival rates
    on both sides of the theorem's bound, integrate the systems from the
    empty state, from a heavily loaded state and from perturbed states,
    and report the largest observed increase of [D(t) = Σ|sᵢ(t) - πᵢ|]
    plus the time to reach the fixed point. Monotone decrease is observed
    well beyond the regime the proof covers — evidence for the paper's
    open question. *)

type row = {
  lambda : float;
  pi2 : float;
  theorem_applies : bool;  (** [π₂ < 1/2]. *)
  start : string;  (** Which initial condition. *)
  max_uptick : float;  (** Largest ΔD between samples (≤ 0 slack ideal). *)
  converge_time : float;  (** First t with D(t) ≤ 1e-6; [nan] if never. *)
}

val compute : ?threshold:int -> Scope.t -> row list
(** [threshold] defaults to 2 (the simple system of Theorem 1); pass 3+
    for the Theorem 2 systems. *)

val print : Scope.t -> Format.formatter -> unit
