(** Experiment E13: the price of locality-restricted stealing
    (extension).

    The paper's models assume victims are chosen uniformly — "we are not
    making use of locality" (§2.1) — which is what makes the system
    density-dependent and the mean-field limit exact. Real machines steal
    from neighbours. This experiment restricts thieves to a ring
    neighbourhood of radius [ρ] and measures the cost: at [ρ = 1] a thief
    sees only 2 victims and imbalance pools locally; as [ρ → n/2] the
    system converges to the uniform-victim model, quantifying how much
    victim diversity the mean-field prediction actually needs. *)

type row = {
  radius : int option;  (** [None] = uniform victims (the paper's model). *)
  sim : float;
  sim_p99 : float;
  steal_success_rate : float;
}

val lambda : float
val compute : Scope.t -> row list
val print : Scope.t -> Format.formatter -> unit
