(** Experiment E14: transient (trajectory-level) validation.

    Kurtz's theorem — the paper's foundation — says the {e whole
    trajectory} of the finite system converges to the ODE solution, not
    just its fixed point. This experiment starts both the differential
    equations and the simulator from the empty system and compares the
    tail densities [s₁(t), s₂(t), s₄(t)] at a ladder of times, for two
    system sizes: the simulated curves should hug the deterministic one
    more tightly as [n] grows, all the way through the transient. *)

type row = {
  time : float;
  ode : float array;  (** [s₁, s₂, s₄] from the differential equations. *)
  sim : (int * float array) list;  (** Per system size, same triple. *)
}

val lambda : float
val compute : Scope.t -> row list
val print : Scope.t -> Format.formatter -> unit
