(** Experiment E6: repeated steal attempts (§2.5).

    Empty processors retry at rate [r]. The section's analytical claims,
    quantified: expected time falls as [r] grows; the fixed-point fraction
    [π_T] of processors at or above the threshold vanishes like
    [λ/(1 + r(1-λ) + λ - π₂)] raised to growing powers — in the [r → ∞]
    limit a task above the threshold is stolen instantly. *)

type row = {
  lambda : float;
  retry_rate : float;
  ode : float;  (** Fixed-point expected time. *)
  sim : float;  (** Simulated ([nan] when skipped for very large r). *)
  pi_threshold : float;  (** Fixed-point [π_T]. *)
  ratio_predicted : float;
  ratio_fitted : float;
}

val threshold : int
val compute : Scope.t -> row list
val print : Scope.t -> Format.formatter -> unit
