(** Experiment E8: heterogeneous speeds and static (drain) systems (§3.5).

    Part a: two processor classes at speeds [μ_f > 1 > μ_s]. Work stealing
    lets fast processors absorb the slow class's backlog; the striking
    case is [λ > μ_s], where slow processors are individually overloaded
    yet the pooled system remains stable.

    Part b: the static system — every processor seeded with [L] tasks, no
    further arrivals — comparing drain time (makespan) with and without
    stealing, mean-field trajectory vs. simulation. With identical initial
    loads the limit predicts little gain (no imbalance to exploit at the
    fluid scale); finite systems develop stochastic imbalance, which
    stealing removes — visible as the simulated no-steal makespan
    exceeding the stealing one by a growing margin. *)

type hetero_row = {
  lambda : float;
  mu_fast : float;
  mu_slow : float;
  ode : float;  (** Mean-field expected time over all tasks; [nan] when
                    no fixed point exists. *)
  sim : float;
  fast_load : float;  (** Fixed-point mean tasks per fast processor. *)
  slow_load : float;
  slow_overloaded : bool;  (** λ > μ_s: stable only thanks to stealing. *)
  stable : bool;
      (** Whether the mean-field fixed point exists. Total capacity above
          λ is {e not} sufficient: on-empty stealing can pull at most the
          fast class's final-completion rate, and when the slow class's
          excess exceeds that pull rate the backlog diverges — a
          work-stealing capacity limit the model exposes. *)
}

type static_row = {
  initial_load : int;
  ode_drain : float;  (** Mean-field time for load/processor < 1e-3. *)
  sim_makespan_steal : float;
  sim_makespan_nosteal : float;
}

val compute_hetero : Scope.t -> hetero_row list
val compute_static : Scope.t -> static_row list
val print : Scope.t -> Format.formatter -> unit
