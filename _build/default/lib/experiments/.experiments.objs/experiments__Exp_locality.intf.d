lib/experiments/exp_locality.mli: Format Scope
