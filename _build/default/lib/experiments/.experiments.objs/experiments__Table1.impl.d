lib/experiments/table1.ml: Float List Meanfield Paper_values Printf Scope Table_fmt Wsim
