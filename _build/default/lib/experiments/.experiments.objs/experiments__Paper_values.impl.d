lib/experiments/paper_values.ml: Float List
