lib/experiments/paper_values.mli:
