lib/experiments/exp_ablation.ml: Array Float Lazy List Meanfield Numerics Printf Sys Table_fmt
