lib/experiments/registry.mli: Format Scope
