lib/experiments/exp_multisteal.mli: Format Scope
