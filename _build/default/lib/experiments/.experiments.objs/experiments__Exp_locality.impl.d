lib/experiments/exp_locality.ml: Array Float List Meanfield Printf Prob Scope Table_fmt Wsim
