lib/experiments/exp_threshold.mli: Format Scope
