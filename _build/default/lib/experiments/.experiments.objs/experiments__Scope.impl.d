lib/experiments/scope.ml: Format Printf Wsim
