lib/experiments/table2.ml: List Meanfield Paper_values Printf Prob Scope Table_fmt Wsim
