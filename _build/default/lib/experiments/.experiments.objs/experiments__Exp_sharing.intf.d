lib/experiments/exp_sharing.mli: Format Scope
