lib/experiments/scope.mli: Format Wsim
