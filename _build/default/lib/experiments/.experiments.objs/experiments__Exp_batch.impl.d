lib/experiments/exp_batch.ml: List Meanfield Printf Prob Scope Table_fmt Wsim
