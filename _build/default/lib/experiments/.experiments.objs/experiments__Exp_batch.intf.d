lib/experiments/exp_batch.mli: Format Scope
