lib/experiments/exp_repeated.mli: Format Scope
