lib/experiments/exp_hetero.ml: Array List Meanfield Printf Prob Scope Table_fmt Wsim
