lib/experiments/exp_sharing.ml: Array Float List Meanfield Printf Prob Scope Table_fmt Wsim
