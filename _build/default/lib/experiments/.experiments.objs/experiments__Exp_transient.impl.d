lib/experiments/exp_transient.ml: Array List Meanfield Printf Prob Scope Table_fmt Wsim
