lib/experiments/table4.ml: List Meanfield Paper_values Printf Scope Table_fmt Wsim
