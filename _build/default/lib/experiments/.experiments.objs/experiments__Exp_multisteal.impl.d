lib/experiments/exp_multisteal.ml: List Meanfield Printf Scope Table_fmt Wsim
