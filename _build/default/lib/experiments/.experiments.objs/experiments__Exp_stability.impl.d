lib/experiments/exp_stability.ml: Array List Meanfield Printf Scope Table_fmt
