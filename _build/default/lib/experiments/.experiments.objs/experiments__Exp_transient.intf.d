lib/experiments/exp_transient.mli: Format Scope
