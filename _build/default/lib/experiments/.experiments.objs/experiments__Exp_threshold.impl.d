lib/experiments/exp_threshold.ml: List Meanfield Printf Scope Table_fmt Wsim
