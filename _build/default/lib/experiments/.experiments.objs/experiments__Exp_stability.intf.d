lib/experiments/exp_stability.mli: Format Scope
