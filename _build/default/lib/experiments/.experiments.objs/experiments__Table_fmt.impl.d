lib/experiments/table_fmt.ml: Float Format List Printf String
