lib/experiments/exp_repeated.ml: Array List Meanfield Printf Scope Table_fmt Wsim
