lib/experiments/exp_hetero.mli: Format Scope
