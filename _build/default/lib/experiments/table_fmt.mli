(** Plain-text table rendering in the style of the paper's tables. *)

val cell : float -> string
(** Three-decimal rendering; NaN prints as ["-"]. *)

val cell_pct : float -> string
(** Two-decimal percentage (the paper's relative-error column). *)

val render :
  Format.formatter ->
  title:string ->
  ?note:string ->
  headers:string list ->
  rows:string list list ->
  unit ->
  unit
(** Pretty-print a titled, column-aligned table. Every row must have as
    many cells as [headers]. *)
