let cell x = if Float.is_nan x then "-" else Printf.sprintf "%.3f" x
let cell_pct x = if Float.is_nan x then "-" else Printf.sprintf "%.2f" x

let render ppf ~title ?note ~headers ~rows () =
  List.iter
    (fun row ->
      if List.length row <> List.length headers then
        invalid_arg "Table_fmt.render: ragged row")
    rows;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let pad w s = String.make (w - String.length s) ' ' ^ s in
  let line row =
    String.concat "  " (List.map2 pad widths row)
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf ppf "%s@." title;
  (match note with Some n -> Format.fprintf ppf "%s@." n | None -> ());
  Format.fprintf ppf "%s@.%s@." (line headers) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@." (line row)) rows;
  Format.fprintf ppf "@."
