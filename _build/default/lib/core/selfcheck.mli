(** Generic diagnostics for a mean-field model.

    A single entry point that exercises the checks every variant should
    pass — used by the test suite, and exposed through the CLI so that a
    user extending the library with a new model gets an immediate
    verdict:

    - the driver converges to a fixed point and its residual is tiny;
    - the fixed point satisfies the model's own state invariant;
    - states stay valid along a trajectory from the empty system;
    - the fitted geometric tail ratio agrees with the model's prediction
      when it has one (the paper's structural claim). *)

type report = {
  model_name : string;
  converged : bool;
  fixed_point_residual : float;
  fixed_point_valid : bool;
  trajectory_valid : bool;
      (** Every sampled state of a 50-time-unit trajectory from empty
          passes [validate]. *)
  mean_tasks : float;
  mean_time : float;  (** [nan] for throughput-less (static) models. *)
  fitted_tail_ratio : float;
  predicted_tail_ratio : float option;
  tail_ratio_agrees : bool;
      (** [true] when no prediction exists or |fit - prediction| < 0.01. *)
}

val passed : report -> bool
(** Conjunction of all boolean findings plus a residual below 1e-8. *)

val run : ?horizon:float -> ?max_time:float -> Model.t -> report
(** Run the diagnostics ([horizon] of the trajectory check defaults to
    50). *)

val pp : Format.formatter -> report -> unit
