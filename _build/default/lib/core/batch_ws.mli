(** Work stealing under bursty (batch) arrivals — the arrival-distribution
    side of Section 3.1's programme.

    Section 3.1 notes the technique extends to other arrival distributions
    as well as service distributions. Here arrival {e events} occur at each
    processor as a Poisson process of rate [event_rate], and each event
    delivers a geometrically distributed batch of [K ≥ 1] tasks with mean
    [mean_batch] (so [P(K ≥ j) = (1-q)^(j-1)], [q = 1/mean_batch]); tasks
    are served FIFO and stolen on-empty against a threshold, as in §2.3.
    The arrival gain to [sᵢ] telescopes into the linear recurrence
    [Gᵢ₊₁ = (1-q)·Gᵢ + pᵢ] over the point masses [pⱼ = sⱼ - s_{j+1}],
    keeping the derivative O(dim). Utilisation is
    [ρ = event_rate·mean_batch]; [mean_batch = 1] recovers
    {!Threshold_ws} exactly. *)

val model :
  event_rate:float ->
  mean_batch:float ->
  ?threshold:int ->
  ?dim:int ->
  unit ->
  Model.t
(** @raise Invalid_argument unless [mean_batch ≥ 1],
    [event_rate·mean_batch < 1] and the threshold is at least 2. *)

val utilization : event_rate:float -> mean_batch:float -> float
(** [ρ = event_rate·mean_batch], the task arrival rate per processor. *)
