(** Numerical companions to Section 4 (convergence and stability).

    Theorems 1 and 2 prove that for the simple and threshold systems the
    L1 distance to the fixed point never increases along trajectories when
    [π₂ < 1/2]. These helpers measure that distance along numerically
    integrated trajectories — the paper's own suggested practice ("one can
    check for convergence to the fixed point numerically using various
    starting points"). *)

val l1_distance : Numerics.Vec.t -> Numerics.Vec.t -> float
(** [D(t) = Σᵢ |sᵢ(t) - πᵢ|] of the paper's proof. *)

val distance_trace :
  ?dt:float ->
  start:[ `Empty | `Warm | `State of Numerics.Vec.t ] ->
  fixed_point:Numerics.Vec.t ->
  horizon:float ->
  sample_every:float ->
  Model.t ->
  (float * float) list
(** [(t, D(t))] along the trajectory from [start]. *)

val max_uptick : (float * float) list -> float
(** Largest increase between consecutive samples of a trace (0 for a
    monotone non-increasing trace). *)

val is_nonincreasing : ?slack:float -> (float * float) list -> bool
(** Whether the trace never increases by more than [slack]
    (default [1e-9], absorbing integration round-off). *)

val simple_ws_stable_lambda_bound : float
(** The largest [λ] for which Theorem 1 applies to the simple WS system,
    i.e. the solution of [π₂(λ) = 1/2], which is [(1+√5)/4 ≈ 0.8090]. *)

val convergence_time :
  ?dt:float ->
  ?eps:float ->
  start:[ `Empty | `Warm | `State of Numerics.Vec.t ] ->
  fixed_point:Numerics.Vec.t ->
  horizon:float ->
  Model.t ->
  float option
(** First sampled time at which [D(t) ≤ eps] (default [1e-6]); [None] if
    the horizon is hit first. *)
