open Numerics

let ipow x d =
  let rec go acc x d =
    if d = 0 then acc
    else if d land 1 = 1 then go (acc *. x) (x *. x) (d asr 1)
    else go acc (x *. x) (d asr 1)
  in
  go 1.0 x d

let deriv ~lambda ~d ~steal ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  let attempt, s_t =
    match steal with
    | None -> (0.0, 0.0)
    | Some t -> (y.(1) -. y.(2), get t)
  in
  dy.(0) <- 0.0;
  for i = 1 to n - 1 do
    let arrive = lambda *. (ipow y.(i - 1) d -. ipow y.(i) d) in
    let drain = y.(i) -. get (i + 1) in
    let steal_adjust =
      match steal with
      | None -> 0.0
      | Some t ->
          if i = 1 then
            (* failed final-completion attempts leave s₁; successes are
               instantly restored, exactly as in Threshold_ws *)
            drain *. s_t
          else if i >= t then -.(drain *. attempt)
          else 0.0
    in
    (* i = 1 needs the drain written with the success compensation folded
       in: -(s1-s2)(1-s_T) = -drain + drain*s_T *)
    dy.(i) <- arrive -. drain +. steal_adjust
  done

let model ~lambda ~choices ?steal_threshold ?dim () =
  if choices < 1 then invalid_arg "Supermarket: choices must be at least 1";
  (match steal_threshold with
  | Some t when t < 2 ->
      invalid_arg "Supermarket: steal_threshold must be at least 2"
  | Some _ | None -> ());
  let dim =
    match dim with Some d -> d | None -> Tail.suggested_dim ~lambda ()
  in
  let name =
    match steal_threshold with
    | None -> Printf.sprintf "supermarket(lambda=%g, d=%d)" lambda choices
    | Some t ->
        Printf.sprintf "supermarket_ws(lambda=%g, d=%d, T=%d)" lambda
          choices t
  in
  Model.of_single_tail ~name ~lambda ~dim
    ~deriv:(fun ~y ~dy ->
      deriv ~lambda ~d:choices ~steal:steal_threshold ~y ~dy)
    ()

let fixed_point_exact ~lambda ~choices ~dim =
  if choices < 1 then invalid_arg "Supermarket: choices must be at least 1";
  let d = float_of_int choices in
  Vec.init dim (fun i ->
      if i = 0 then 1.0
      else begin
        (* exponent (d^i - 1)/(d - 1), which is i when d = 1 *)
        let expo =
          if choices = 1 then float_of_int i
          else ((d ** float_of_int i) -. 1.0) /. (d -. 1.0)
        in
        (* avoid underflow blowups: λ^expo for huge expo is just 0 *)
        if expo *. log lambda < -700.0 then 0.0 else lambda ** expo
      end)

let mean_tasks_exact ~lambda ~choices =
  let s = fixed_point_exact ~lambda ~choices ~dim:256 in
  (* doubly exponential decay: 256 terms is far beyond double precision *)
  Vec.sum_from s 1

let mean_time_exact ~lambda ~choices =
  mean_tasks_exact ~lambda ~choices /. lambda
