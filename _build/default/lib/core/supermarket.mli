(** The supermarket (d-choice placement) model — the work-{e sharing}
    counterpart that motivates Section 3.3.

    The paper's multiple-choice stealing strategy is motivated by the
    power of two choices in load {e sharing}: an arriving task probes [d]
    uniformly random servers and queues at the least loaded, giving the
    famous doubly exponential tail [sᵢ = λ^((dⁱ-1)/(d-1))]
    (Mitzenmacher '96; Vvedenskaya–Dobrushin–Karpelevich '96). Limiting
    system:

    {v dsᵢ/dt = λ(s_{i-1}^d - sᵢ^d) - (sᵢ - s_{i+1}),   i ≥ 1 v}

    Reproducing it here lets the experiments put stealing and sharing side
    by side — the contrast drawn in the paper's introduction — and, as an
    extension beyond the paper, the two combine: [steal_threshold] adds
    the §2.3 stealing terms on top of d-choice placement, modelling a
    system that balances on both arrival and idleness. *)

val model :
  lambda:float ->
  choices:int ->
  ?steal_threshold:int ->
  ?dim:int ->
  unit ->
  Model.t
(** [choices = 1] without stealing is the M/M/1 baseline.
    @raise Invalid_argument if [choices < 1] or a given [steal_threshold]
    is below 2. *)

val fixed_point_exact :
  lambda:float -> choices:int -> dim:int -> Numerics.Vec.t
(** The doubly exponential closed form [sᵢ = λ^((dⁱ-1)/(d-1))] (pure
    placement, no stealing). *)

val mean_tasks_exact : lambda:float -> choices:int -> float
val mean_time_exact : lambda:float -> choices:int -> float
