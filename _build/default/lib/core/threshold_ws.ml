open Numerics

let check_threshold threshold =
  if threshold < 2 then
    invalid_arg "Threshold_ws: threshold must be at least 2"

let pi_threshold_exact ~lambda ~threshold =
  check_threshold threshold;
  Root.solve_quadratic_smaller ~b:(-.(1.0 +. lambda))
    ~c:(lambda ** float_of_int threshold)

(* Prefix π₁ … π_T: differences d_i = π_i - π_{i+1} satisfy d_i = λ^{i-1}·d₁
   for 1 ≤ i ≤ T-1 (equation (5) at the fixed point), with
   d₁ = λ(1-λ)/(1-π_T) from equation (4). *)
let prefix ~lambda ~threshold =
  let pi_t = pi_threshold_exact ~lambda ~threshold in
  let d1 = lambda *. (1.0 -. lambda) /. (1.0 -. pi_t) in
  let pis = Array.make (threshold + 1) 0.0 in
  pis.(0) <- 1.0;
  pis.(1) <- lambda;
  let d = ref d1 in
  for i = 2 to threshold do
    pis.(i) <- pis.(i - 1) -. !d;
    d := !d *. lambda
  done;
  pis

let tail_ratio_exact ~lambda ~threshold =
  let pis = prefix ~lambda ~threshold in
  lambda /. (1.0 +. lambda -. pis.(2))

let fixed_point_exact ~lambda ~threshold ~dim =
  check_threshold threshold;
  if dim < threshold + 2 then
    invalid_arg "Threshold_ws.fixed_point_exact: dim too small";
  let pis = prefix ~lambda ~threshold in
  let q = tail_ratio_exact ~lambda ~threshold in
  Vec.init dim (fun i ->
      if i <= threshold then pis.(i)
      else pis.(threshold) *. (q ** float_of_int (i - threshold)))

let mean_tasks_exact ~lambda ~threshold =
  let pis = prefix ~lambda ~threshold in
  let q = tail_ratio_exact ~lambda ~threshold in
  let prefix_sum = ref 0.0 in
  for i = 1 to threshold - 1 do
    prefix_sum := !prefix_sum +. pis.(i)
  done;
  !prefix_sum +. (pis.(threshold) /. (1.0 -. q))

let mean_time_exact ~lambda ~threshold =
  mean_tasks_exact ~lambda ~threshold /. lambda

let deriv ~lambda ~threshold ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let steal_rate = y.(1) -. y.(2) in
  let s_t = y.(threshold) in
  dy.(0) <- 0.0;
  dy.(1) <- (lambda *. (y.(0) -. y.(1))) -. (steal_rate *. (1.0 -. s_t));
  for i = 2 to n - 1 do
    let next = if i + 1 < n then y.(i + 1) else Tail.ext y ~ratio (i + 1) in
    let drain = y.(i) -. next in
    let steal_loss = if i >= threshold then drain *. steal_rate else 0.0 in
    dy.(i) <- (lambda *. (y.(i - 1) -. y.(i))) -. drain -. steal_loss
  done

let model ~lambda ~threshold ?dim () =
  check_threshold threshold;
  let dim =
    match dim with
    | Some d -> d
    | None -> max (threshold + 8) (Tail.suggested_dim ~lambda ())
  in
  Model.of_single_tail
    ~name:(Printf.sprintf "threshold_ws(lambda=%g, T=%d)" lambda threshold)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~threshold ~y ~dy)
    ~predicted_tail_ratio:(fun s -> lambda /. (1.0 +. lambda -. s.(2)))
    ()
