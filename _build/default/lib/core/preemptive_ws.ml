open Numerics

let tail_ratio_predicted ~lambda s ~begin_at =
  lambda /. (1.0 +. lambda -. s.(begin_at + 2))

let deriv ~lambda ~b ~t ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  dy.(0) <- 0.0;
  for i = 1 to n - 1 do
    let drain = y.(i) -. get (i + 1) in
    let arrive = lambda *. (y.(i - 1) -. y.(i)) in
    if i <= b + 1 then
      (* Completion leaves the thief at load i-1 ≤ B: it attempts a steal
         from a victim with ≥ i+T-1 tasks, and on success its own level is
         instantly restored. *)
      dy.(i) <- arrive -. (drain *. (1.0 -. get (i + t - 1)))
    else if i <= t - 1 then dy.(i) <- arrive -. drain
    else begin
      (* Victim side: thieves at levels j ≤ min(B, i-T) target exactly-i
         victims; their aggregate completion-rate density telescopes. *)
      let cut = min (b + 2) (i - t + 2) in
      let thief_rate = y.(1) -. get cut in
      dy.(i) <- arrive -. drain -. (drain *. thief_rate)
    end
  done

let model ~lambda ~begin_at ~offset ?dim () =
  if begin_at < 0 then invalid_arg "Preemptive_ws: begin_at must be >= 0";
  if offset < begin_at + 2 then
    invalid_arg "Preemptive_ws: need offset >= begin_at + 2";
  let dim =
    match dim with
    | Some d -> d
    | None ->
        max (begin_at + offset + 8) (Tail.suggested_dim ~lambda ())
  in
  Model.of_single_tail
    ~name:
      (Printf.sprintf "preemptive_ws(lambda=%g, B=%d, T=%d)" lambda begin_at
         offset)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~b:begin_at ~t:offset ~y ~dy)
    ~predicted_tail_ratio:(fun s ->
      tail_ratio_predicted ~lambda s ~begin_at)
    ()
