open Numerics

type fixed_point = {
  state : Vec.t;
  residual : float;
  converged : bool;
  elapsed : float;
}

let residual model state =
  let dy = Vec.create model.Model.dim in
  model.Model.deriv ~y:state ~dy;
  Vec.norm_inf dy

let initial model = function
  | `Empty -> model.Model.initial_empty ()
  | `Warm -> model.Model.initial_warm ()
  | `State s ->
      if Vec.dim s <> model.Model.dim then
        invalid_arg "Drive: start state has wrong dimension";
      Vec.copy s

(* The approach to the fixed point is asymptotically x(t) = x* + C·e^(-t/τ):
   three snapshots Δ apart determine x* by a dominant-mode extrapolation.
   Only accept it if it actually reduces the residual — near-degenerate
   differences can produce garbage. *)
let try_accelerate model sys ~dt y =
  let delta = 100.0 in
  let y0 = Vec.copy y in
  Ode.integrate sys ~y ~t0:0.0 ~t1:delta ~dt;
  let y1 = Vec.copy y in
  Ode.integrate sys ~y ~t0:delta ~t1:(2.0 *. delta) ~dt;
  let y2 = Vec.copy y in
  let r_plain = residual model y2 in
  let best = ref y2 and best_r = ref r_plain in
  let consider candidate =
    if model.Model.validate candidate then begin
      let r = residual model candidate in
      if r < !best_r then begin
        best := candidate;
        best_r := r
      end
    end
  in
  consider (Accel.extrapolate_dominant y0 y1 y2);
  consider (Accel.aitken_vec y0 y1 y2);
  Vec.blit ~src:!best ~dst:y;
  !best_r

let fixed_point ?dt ?(tol = 1e-11) ?(max_time = 2e5) ?(accelerate = true)
    ?(start = `Warm) model =
  let dt = match dt with Some d -> d | None -> model.Model.suggested_dt in
  let y = initial model start in
  let sys = Model.as_system model in
  let check_every = 25.0 in
  let elapsed = ref 0.0 in
  let budget_left () = max_time -. !elapsed in
  let rec loop () =
    let r = residual model y in
    if r <= tol then { state = y; residual = r; converged = true;
                       elapsed = !elapsed }
    else if budget_left () <= 0.0 then
      { state = y; residual = r; converged = false; elapsed = !elapsed }
    else if accelerate && r < 1e-3 then begin
      (* Close enough that the slowest mode dominates: extrapolate. *)
      let r' = try_accelerate model sys ~dt y in
      elapsed := !elapsed +. 200.0;
      if r' <= tol then
        { state = y; residual = r'; converged = true; elapsed = !elapsed }
      else if r' >= r *. 0.999 then begin
        (* Extrapolation stalled; fall back to plain integration. *)
        let chunk = Float.min (budget_left ()) 200.0 in
        Ode.integrate sys ~y ~t0:0.0 ~t1:chunk ~dt;
        elapsed := !elapsed +. chunk;
        loop ()
      end
      else loop ()
    end
    else begin
      let chunk = Float.min (budget_left ()) check_every in
      Ode.integrate sys ~y ~t0:0.0 ~t1:chunk ~dt;
      elapsed := !elapsed +. chunk;
      loop ()
    end
  in
  loop ()

let trajectory ?(dt = 0.05) ?(start = `Empty) ~horizon ~sample_every model =
  let y = initial model start in
  let sys = Model.as_system model in
  let samples = ref [] in
  Ode.observe sys ~y ~t0:0.0 ~t1:horizon ~dt ~sample_every (fun t s ->
      samples := (t, Vec.copy s) :: !samples);
  List.rev !samples
