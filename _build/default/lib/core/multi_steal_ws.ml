open Numerics

let deriv ~lambda ~k ~t ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  let attempt = y.(1) -. y.(2) in
  let s_t = get t in
  dy.(0) <- 0.0;
  dy.(1) <- (lambda *. (y.(0) -. y.(1))) -. (attempt *. (1.0 -. s_t));
  for i = 2 to n - 1 do
    let drain = y.(i) -. get (i + 1) in
    let arrive = lambda *. (y.(i - 1) -. y.(i)) in
    let thief_gain = if i <= k then attempt *. s_t else 0.0 in
    let victim_loss =
      (* victims of load x lower s_i when i ≤ x < i+k and x ≥ T *)
      let hi = get (max i t) -. get (max (i + k) t) in
      attempt *. hi
    in
    dy.(i) <- arrive -. drain +. thief_gain -. victim_loss
  done

let model ~lambda ~steal_count ~threshold ?dim () =
  if steal_count < 1 then
    invalid_arg "Multi_steal_ws: steal_count must be at least 1";
  if 2 * steal_count > threshold then
    invalid_arg "Multi_steal_ws: need 2·steal_count <= threshold";
  let dim =
    match dim with
    | Some d -> d
    | None -> max (threshold + 8) (Tail.suggested_dim ~lambda ())
  in
  Model.of_single_tail
    ~name:
      (Printf.sprintf "multi_steal_ws(lambda=%g, k=%d, T=%d)" lambda
         steal_count threshold)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~k:steal_count ~t:threshold ~y ~dy)
    ()
