(** The combined on-empty stealing model: threshold [T], [d] victim
    choices, [k] tasks per steal — §3's opening remark ("it should be
    clear … that the extensions can be combined as desired") made
    concrete.

    A processor that empties probes [d] uniformly random victims and
    steals [k] tasks from the most loaded if it holds at least [T ≥ k+1]
    tasks (so victims keep their in-service task). With [A = s₁-s₂] and
    the max-of-d victim-level weights
    [h_v = (1-s_{v+1})^d - (1-s_v)^d]:

    {v
      ds₁/dt = λ(s₀-s₁) - A·(1-s_T)^d
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1})
               + [i ≤ k]·A·(1-(1-s_T)^d)
               - A·((1-s_{i+k})^d - (1-s_{max(i,T)})^d)⁺ ,        i ≥ 2
    v}

    where the victim-loss bracket is taken when non-degenerate
    ([i ≥ T-k+1]) and clamps to 0 otherwise. Setting [d = 1] recovers
    {!Multi_steal_ws}, [k = 1] recovers {!Multi_choice_ws}, and both give
    {!Threshold_ws} — boundary reductions the test suite checks, along
    with agreement against the simulator's [On_empty] policy at the same
    three parameters. *)

val model :
  lambda:float ->
  threshold:int ->
  choices:int ->
  steal_count:int ->
  ?dim:int ->
  unit ->
  Model.t
(** @raise Invalid_argument unless [threshold ≥ steal_count + 1],
    [choices ≥ 1] and [steal_count ≥ 1]. *)
