(** Threshold stealing (Section 2.3).

    Thieves steal only from victims whose load is at least a threshold
    [T ≥ 2], to make the transfer worthwhile. Limiting equations (4)–(6):

    {v
      ds₁/dt = λ(s₀-s₁) - (s₁-s₂)(1-s_T)
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1}),                    2 ≤ i ≤ T-1
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1})(1 + s₁-s₂),          i ≥ T
    v}

    Closed-form fixed point (re-derived from the equations, since the
    displayed formula in our source text is OCR-garbled): [π_T] is the
    smaller root of [y² - (1+λ)y + λ^T = 0] — obtained by telescoping
    [Σ_{i=1}^{T-1} dsᵢ/dt = 0] exactly as in the paper — and for
    [1 ≤ i ≤ T] the prefix follows the difference recurrence
    [d_{i+1} = λ·dᵢ] with [d₁ = π₁-π₂ = λ(1-λ)/(1-π_T)]. Beyond [T] the
    tails are geometric with the same apparent-service-rate ratio
    [q = λ/(1+λ-π₂)] as the simple system. [T = 2] reduces exactly to
    {!Simple_ws}. *)

val model : lambda:float -> threshold:int -> ?dim:int -> unit -> Model.t
(** @raise Invalid_argument unless [threshold >= 2]. *)

val pi_threshold_exact : lambda:float -> threshold:int -> float
(** Closed-form [π_T]. *)

val fixed_point_exact :
  lambda:float -> threshold:int -> dim:int -> Numerics.Vec.t

val tail_ratio_exact : lambda:float -> threshold:int -> float
(** [λ/(1+λ-π₂)] with this system's own [π₂]. *)

val mean_tasks_exact : lambda:float -> threshold:int -> float
val mean_time_exact : lambda:float -> threshold:int -> float
