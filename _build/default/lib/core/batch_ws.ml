open Numerics

let utilization ~event_rate ~mean_batch = event_rate *. mean_batch

let deriv ~event_rate ~fail ~t ~y ~dy =
  (* fail = 1 - 1/mean_batch: per-extra-task continuation probability *)
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  let attempt = y.(1) -. y.(2) in
  let s_t = get t in
  dy.(0) <- 0.0;
  (* G_i = sum_{j<i} p_j fail^(i-1-j): batch reach of level i *)
  let reach = ref 0.0 in
  for i = 1 to n - 1 do
    reach := (!reach *. fail) +. (y.(i - 1) -. y.(i));
    let arrive = event_rate *. !reach in
    let drain = y.(i) -. get (i + 1) in
    if i = 1 then dy.(i) <- arrive -. (drain *. (1.0 -. s_t))
    else begin
      let steal_loss = if i >= t then drain *. attempt else 0.0 in
      dy.(i) <- arrive -. drain -. steal_loss
    end
  done

let model ~event_rate ~mean_batch ?(threshold = 2) ?dim () =
  if mean_batch < 1.0 then
    invalid_arg "Batch_ws: mean_batch must be at least 1";
  if threshold < 2 then
    invalid_arg "Batch_ws: threshold must be at least 2";
  let rho = utilization ~event_rate ~mean_batch in
  if event_rate <= 0.0 || rho >= 1.0 then
    invalid_arg "Batch_ws: need 0 < event_rate x mean_batch < 1";
  let dim =
    match dim with
    | Some d -> d
    | None ->
        (* batches deepen the tail: size by rho and stretch by the batch *)
        max (threshold + 8)
          (min 768
             (int_of_float
                (Float.ceil
                   (float_of_int (Tail.suggested_dim ~lambda:rho ())
                   *. Float.max 1.0 (sqrt mean_batch)))))
  in
  let fail = 1.0 -. (1.0 /. mean_batch) in
  let base =
    Model.of_single_tail
      ~name:
        (Printf.sprintf "batch_ws(rate=%g, batch=%g, T=%d)" event_rate
           mean_batch threshold)
      ~lambda:rho ~dim
      ~deriv:(fun ~y ~dy -> deriv ~event_rate ~fail ~t:threshold ~y ~dy)
      ()
  in
  base
