(** Integrating a mean-field model: trajectories and fixed points.

    The paper's methodology is to (i) follow trajectories of the limiting
    differential equations and (ii) solve for the fixed point where all
    [dsᵢ/dt = 0], which predicts steady-state performance. Fixed points
    with no closed form are obtained here by long-horizon relaxation of the
    ODEs, optionally accelerated by Aitken extrapolation of the (linearly
    converging) approach to equilibrium. *)

type fixed_point = {
  state : Numerics.Vec.t;  (** Approximate fixed point. *)
  residual : float;  (** [‖ds/dt‖∞] at [state]. *)
  converged : bool;  (** Whether [residual ≤ tol] was reached. *)
  elapsed : float;  (** Simulated relaxation time used. *)
}

val fixed_point :
  ?dt:float ->
  ?tol:float ->
  ?max_time:float ->
  ?accelerate:bool ->
  ?start:[ `Empty | `Warm | `State of Numerics.Vec.t ] ->
  Model.t ->
  fixed_point
(** Relax the model to its fixed point. Defaults: [dt] from
    {!Model.t.suggested_dt}, [tol = 1e-11], [max_time = 2e5],
    [accelerate = true], [start = `Warm]. The returned state is freshly
    allocated. *)

val residual : Model.t -> Numerics.Vec.t -> float
(** [‖ds/dt‖∞] at the given state. *)

val trajectory :
  ?dt:float ->
  ?start:[ `Empty | `Warm | `State of Numerics.Vec.t ] ->
  horizon:float ->
  sample_every:float ->
  Model.t ->
  (float * Numerics.Vec.t) list
(** Sampled trajectory from the chosen start; each sample is a fresh copy,
    in increasing time order, including both endpoints. Default
    [start = `Empty] (matching how the paper's simulations begin),
    [dt = 0.05]. *)
