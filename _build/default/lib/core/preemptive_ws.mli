(** Preemptive stealing (Section 2.4).

    A processor begins attempting steals before it runs dry: with [B] the
    load at or below which it tries to steal, and offset [T], a thief
    holding [i] tasks only steals from victims with at least [i + T]
    tasks. Steal attempts are made at task completions that leave the
    thief at load [≤ B]. Limiting system:

    {v
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1})(1-s_{i+T-1}),      1 ≤ i ≤ B+1
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1}),                  B+2 ≤ i ≤ T-1
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1})
               - (sᵢ-s_{i+1})(s₁ - s_{min(B+2, i-T+2)}),            i ≥ T
    v}

    (the last factor aggregates thieves at levels [j ≤ min(B, i-T)], whose
    completion-rate density telescopes to [s₁ - s_{min(B,i-T)+2}]).

    The fixed point has no convenient closed form; it is obtained by ODE
    relaxation. For [i ≥ B+T] the tails decrease geometrically at rate
    [λ/(1+λ-π_{B+2})] — all thief levels are active against such deep
    victims — which {!Model.predicted_tail_ratio} exposes for checking.

    Requires [T ≥ B + 2] so that an attempt's own departure range and the
    plain-service range do not overlap ([B = 0] recovers
    {!Threshold_ws}). *)

val model :
  lambda:float -> begin_at:int -> offset:int -> ?dim:int -> unit -> Model.t
(** [begin_at] is [B ≥ 0]; [offset] is [T ≥ B+2].
    @raise Invalid_argument on parameter violations. *)

val tail_ratio_predicted : lambda:float -> Numerics.Vec.t -> begin_at:int -> float
(** [λ/(1+λ-π_{B+2})] evaluated on a (fixed-point) state. *)
