(** Heterogeneous processor speeds (Section 3.5).

    Two processor classes — a fraction [fraction_fast] of fast processors
    with service rate [mu_fast] and the rest slow with rate [mu_slow] —
    each tracked by its own tail vector ([u₀ = f_fast], [v₀ = 1-f_fast]).
    Arrivals occur at rate [λ] at every processor; a processor of either
    class that empties steals from a victim chosen uniformly over the
    whole population (threshold [T]). With [R = μ_f(u₁-u₂) + μ_s(v₁-v₂)]
    the total steal-attempt rate density and [S_T = u_T + v_T] the victim
    pool:

    {v
      du₁/dt = λ(u₀-u₁) - μ_f(u₁-u₂)(1-S_T)
      duᵢ/dt = λ(u_{i-1}-uᵢ) - μ_f(uᵢ-u_{i+1}),                2 ≤ i ≤ T-1
      duᵢ/dt = λ(u_{i-1}-uᵢ) - μ_f(uᵢ-u_{i+1}) - R(uᵢ-u_{i+1}),    i ≥ T
    v}

    and symmetrically for the slow class. These equations follow the
    paper's Section 3.5 recipe (one state vector per processor type, each
    a fixed fraction of the population); it gives no displayed equations,
    so the derivation mirrors Section 2.2. Work stealing lets the fast
    class carry the slow one: the system can be stable even when
    [λ > mu_slow], provided the average service capacity exceeds [λ] —
    explored in experiment E8. *)

val model :
  lambda:float ->
  fraction_fast:float ->
  mu_fast:float ->
  mu_slow:float ->
  threshold:int ->
  ?depth:int ->
  unit ->
  Model.t
(** @raise Invalid_argument unless [0 < fraction_fast < 1], speeds are
    positive, [threshold >= 2], and average capacity exceeds [lambda]. *)

val split : Model.t -> Numerics.Vec.t -> Numerics.Vec.t * Numerics.Vec.t
(** [(fast, slow)] tail-vector copies from a packed state. *)

val class_mean_tasks :
  Model.t -> Numerics.Vec.t -> fast:bool -> float
(** Expected tasks per processor conditioned on the class (dividing by the
    class mass). *)
