(** Reading performance predictions out of mean-field states. *)

val mean_tasks : Model.t -> Numerics.Vec.t -> float
(** Expected tasks per processor (delegates to the model's accounting). *)

val mean_time : Model.t -> Numerics.Vec.t -> float
(** Expected sojourn time by Little's law; the quantity in every table of
    the paper. *)

val empirical_tail_ratio :
  ?from:int -> ?floor:float -> Numerics.Vec.t -> float
(** Geometric decay rate fitted to a tail vector:
    [(s_j / s_from)^(1/(j-from))] where [j] is the deepest index with
    [s_j > floor] (default [1e-9]); [nan] when the tail is too short to
    fit. Compared in tests against {!Model.predicted_tail_ratio} — the
    paper's headline claim is that these ratios match
    [λ/(1 + λ - π₂)]-style formulas. *)

val tail_table :
  ?upto:int -> Numerics.Vec.t -> (int * float) list
(** [(i, sᵢ)] pairs for display, [i ≤ upto] (default 12). *)
