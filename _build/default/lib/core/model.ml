open Numerics

type t = {
  name : string;
  dim : int;
  throughput : float;
  deriv : y:Vec.t -> dy:Vec.t -> unit;
  initial_empty : unit -> Vec.t;
  initial_warm : unit -> Vec.t;
  mean_tasks : Vec.t -> float;
  predicted_tail_ratio : (Vec.t -> float) option;
  validate : Vec.t -> bool;
  suggested_dt : float;
}

let as_system m =
  { Ode.dim = m.dim; deriv = (fun ~t:_ ~y ~dy -> m.deriv ~y ~dy) }

let mean_time m state =
  if m.throughput <= 0.0 then nan else m.mean_tasks state /. m.throughput

let of_single_tail ~name ~lambda ~dim ~deriv ?predicted_tail_ratio
    ?warm_ratio ?(suggested_dt = 0.25) () =
  if dim < 4 then invalid_arg "Model.of_single_tail: dim too small";
  if lambda < 0.0 || lambda >= 1.0 then
    invalid_arg "Model.of_single_tail: need 0 <= lambda < 1 for stability";
  let warm_ratio = match warm_ratio with Some r -> r | None -> lambda in
  {
    name;
    dim;
    throughput = lambda;
    deriv;
    initial_empty = (fun () -> Tail.empty ~dim ~mass:1.0);
    initial_warm = (fun () -> Tail.geometric ~dim ~ratio:warm_ratio ~mass:1.0);
    mean_tasks = (fun s -> Tail.mean_tasks ~from:1 s);
    predicted_tail_ratio;
    validate = (fun s -> Tail.is_valid ~mass:1.0 s);
    suggested_dt;
  }
