open Numerics

let deriv ~lambda ~rates ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  let rate j = if j < Array.length rates then rates.(j) else rates.(Array.length rates - 1) in
  dy.(0) <- 0.0;
  for i = 1 to n - 1 do
    dy.(i) <-
      (lambda *. (y.(i - 1) -. y.(i))) -. (y.(i) -. get (i + 1))
  done;
  (* Point masses and their effective support. *)
  let p = Array.init n (fun j -> y.(j) -. get (j + 1)) in
  let support = ref (n - 1) in
  while !support > 0 && p.(!support) <= 1e-14 do
    decr support
  done;
  (* diff.(a) += x; diff.(b+1) -= x encodes adding x to dsᵢ for a ≤ i ≤ b. *)
  let diff = Array.make (n + 1) 0.0 in
  let add_range a b x =
    if a <= b then begin
      diff.(a) <- diff.(a) +. x;
      if b + 1 <= n then diff.(b + 1) <- diff.(b + 1) -. x
    end
  in
  for j = 2 to !support do
    (* k < j - 1: pairs that actually move load. *)
    for k = 0 to j - 2 do
      let pair_rate = (rate j +. rate k) *. p.(j) *. p.(k) in
      if pair_rate > 0.0 then begin
        let lo' = (j + k) / 2 and hi' = (j + k + 1) / 2 in
        add_range (k + 1) lo' pair_rate;
        add_range (hi' + 1) j (-.pair_rate)
      end
    done
  done;
  let acc = ref 0.0 in
  for i = 1 to n - 1 do
    acc := !acc +. diff.(i);
    dy.(i) <- dy.(i) +. !acc
  done

let model ~lambda ~rate ?dim () =
  let dim =
    match dim with Some d -> d | None -> Tail.suggested_dim ~lambda ()
  in
  let rates = Array.init (dim + 2) rate in
  Array.iteri
    (fun i r ->
      if r < 0.0 then
        invalid_arg
          (Printf.sprintf "Rebalance_ws: rate %d is negative" i))
    rates;
  let max_rate = Array.fold_left Float.max 0.0 rates in
  Model.of_single_tail
    ~name:(Printf.sprintf "rebalance_ws(lambda=%g)" lambda)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~rates ~y ~dy)
    ~suggested_dt:(Float.min 0.25 (0.5 /. (1.0 +. (2.0 *. max_rate))))
    ()

let model_uniform_rate ~lambda ~rate ?dim () =
  let m = model ~lambda ~rate:(fun _ -> rate) ?dim () in
  { m with Model.name = Printf.sprintf "rebalance_ws(lambda=%g, r=%g)" lambda rate }
