open Numerics

let l1_distance = Vec.dist_l1

let distance_trace ?(dt = 0.05) ~start ~fixed_point ~horizon ~sample_every
    model =
  Drive.trajectory ~dt ~start ~horizon ~sample_every model
  |> List.map (fun (t, s) -> (t, l1_distance s fixed_point))

let max_uptick trace =
  let rec go acc = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        go (Float.max acc (b -. a)) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 trace

let is_nonincreasing ?(slack = 1e-9) trace = max_uptick trace <= slack

(* π₂(λ) = (1+λ-√(1+2λ-3λ²))/2 = 1/2  ⇔  λ² + ... : solve numerically once.
   π₂ is increasing in λ, so bisection on [0,1) is safe. *)
let simple_ws_stable_lambda_bound =
  let pi2 lambda =
    Root.solve_quadratic_smaller ~b:(-.(1.0 +. lambda))
      ~c:(lambda *. lambda)
  in
  Root.bisect (fun l -> pi2 l -. 0.5) ~a:0.01 ~b:0.999

let convergence_time ?(dt = 0.05) ?(eps = 1e-6) ~start ~fixed_point ~horizon
    model =
  let trace =
    distance_trace ~dt ~start ~fixed_point ~horizon
      ~sample_every:(Float.max (horizon /. 400.0) dt)
      model
  in
  List.find_opt (fun (_, d) -> d <= eps) trace |> Option.map fst
