lib/core/transfer_ws.mli: Model Numerics
