lib/core/simple_ws.ml: Array Model Numerics Printf Root Tail Vec
