lib/core/metrics.mli: Model Numerics
