lib/core/drive.mli: Model Numerics
