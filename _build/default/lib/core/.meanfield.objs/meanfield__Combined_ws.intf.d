lib/core/combined_ws.mli: Model
