lib/core/hyperexp_ws.mli: Model Numerics Prob
