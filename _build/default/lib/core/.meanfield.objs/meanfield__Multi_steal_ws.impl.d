lib/core/multi_steal_ws.ml: Array Model Numerics Printf Tail Vec
