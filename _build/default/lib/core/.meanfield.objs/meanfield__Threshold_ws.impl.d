lib/core/threshold_ws.ml: Array Model Numerics Printf Root Tail Vec
