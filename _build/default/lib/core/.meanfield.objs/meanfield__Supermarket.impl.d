lib/core/supermarket.ml: Array Model Numerics Printf Tail Vec
