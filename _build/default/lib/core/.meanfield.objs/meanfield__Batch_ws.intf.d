lib/core/batch_ws.mli: Model
