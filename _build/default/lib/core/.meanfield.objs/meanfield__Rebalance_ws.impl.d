lib/core/rebalance_ws.ml: Array Float Model Numerics Printf Tail Vec
