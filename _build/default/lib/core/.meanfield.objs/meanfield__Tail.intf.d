lib/core/tail.mli: Numerics
