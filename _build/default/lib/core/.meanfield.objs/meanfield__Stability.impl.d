lib/core/stability.ml: Drive Float List Numerics Option Root Vec
