lib/core/heterogeneous_ws.mli: Model Numerics
