lib/core/rebalance_ws.mli: Model
