lib/core/hyperexp_ws.ml: Array Float Model Numerics Printf Prob Tail Vec
