lib/core/selfcheck.mli: Format Model
