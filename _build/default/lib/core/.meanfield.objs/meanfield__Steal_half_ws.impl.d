lib/core/steal_half_ws.ml: Array Model Numerics Printf Tail Vec
