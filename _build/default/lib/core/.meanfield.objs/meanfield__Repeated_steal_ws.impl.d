lib/core/repeated_steal_ws.ml: Array Float Model Numerics Printf Tail Vec
