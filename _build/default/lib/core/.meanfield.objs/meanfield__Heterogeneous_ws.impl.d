lib/core/heterogeneous_ws.ml: Array Float Model Numerics Printf Tail Vec
