lib/core/multi_steal_ws.mli: Model
