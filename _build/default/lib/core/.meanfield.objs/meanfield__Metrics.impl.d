lib/core/metrics.ml: Array Model Numerics Vec
