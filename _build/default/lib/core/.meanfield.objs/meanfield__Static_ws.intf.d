lib/core/static_ws.mli: Model
