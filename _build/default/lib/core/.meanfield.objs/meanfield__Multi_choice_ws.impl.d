lib/core/multi_choice_ws.ml: Array Model Numerics Printf Tail Vec
