lib/core/tail.ml: Array Float Numerics Vec
