lib/core/steal_half_ws.mli: Model
