lib/core/model.ml: Numerics Ode Tail Vec
