lib/core/combined_ws.ml: Array Model Numerics Printf Tail Vec
