lib/core/erlang_ws.mli: Model Numerics
