lib/core/threshold_ws.mli: Model Numerics
