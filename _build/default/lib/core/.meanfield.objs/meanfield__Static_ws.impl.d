lib/core/static_ws.ml: Array Float List Model Numerics Ode Printf Quadrature Tail Vec
