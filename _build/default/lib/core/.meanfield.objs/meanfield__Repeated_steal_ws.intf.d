lib/core/repeated_steal_ws.mli: Model Numerics
