lib/core/erlang_ws.ml: Array Float Model Numerics Printf Simple_ws Tail Vec
