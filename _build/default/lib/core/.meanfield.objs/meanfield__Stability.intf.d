lib/core/stability.mli: Model Numerics
