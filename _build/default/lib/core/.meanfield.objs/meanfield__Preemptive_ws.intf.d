lib/core/preemptive_ws.mli: Model Numerics
