lib/core/selfcheck.ml: Drive Float Format List Metrics Model Option
