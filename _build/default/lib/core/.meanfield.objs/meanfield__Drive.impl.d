lib/core/drive.ml: Accel Float List Model Numerics Ode Vec
