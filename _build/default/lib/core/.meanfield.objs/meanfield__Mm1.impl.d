lib/core/mm1.ml: Array Model Numerics Printf Tail Vec
