lib/core/model.mli: Numerics
