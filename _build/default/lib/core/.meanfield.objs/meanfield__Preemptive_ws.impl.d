lib/core/preemptive_ws.ml: Array Model Numerics Printf Tail Vec
