lib/core/supermarket.mli: Model Numerics
