lib/core/multi_choice_ws.mli: Model
