lib/core/batch_ws.ml: Array Float Model Numerics Printf Tail Vec
