lib/core/mm1.mli: Model Numerics
