lib/core/simple_ws.mli: Model Numerics
