lib/core/transfer_ws.ml: Array Buffer Float Model Numerics Printf String Tail Vec
