open Numerics

let tail_ratio_predicted ~lambda ~retry_rate s =
  lambda
  /. (1.0 +. (retry_rate *. (1.0 -. lambda)) +. lambda -. s.(2))

let deriv ~lambda ~r ~t ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  let s_t = get t in
  let empty = y.(0) -. y.(1) in
  let on_complete = y.(1) -. y.(2) in
  dy.(0) <- 0.0;
  dy.(1) <-
    (lambda *. (y.(0) -. y.(1)))
    +. (r *. empty *. s_t)
    -. (on_complete *. (1.0 -. s_t));
  for i = 2 to n - 1 do
    let drain = y.(i) -. get (i + 1) in
    let arrive = lambda *. (y.(i - 1) -. y.(i)) in
    if i <= t - 1 then dy.(i) <- arrive -. drain
    else
      dy.(i) <-
        arrive -. (drain *. (1.0 +. on_complete +. (r *. empty)))
  done

let model ~lambda ~retry_rate ~threshold ?dim () =
  if retry_rate < 0.0 then
    invalid_arg "Repeated_steal_ws: retry_rate must be non-negative";
  if threshold < 2 then
    invalid_arg "Repeated_steal_ws: threshold must be at least 2";
  let dim =
    match dim with
    | Some d -> d
    | None -> max (threshold + 8) (Tail.suggested_dim ~lambda ())
  in
  Model.of_single_tail
    ~name:
      (Printf.sprintf "repeated_steal_ws(lambda=%g, r=%g, T=%d)" lambda
         retry_rate threshold)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~r:retry_rate ~t:threshold ~y ~dy)
    ~predicted_tail_ratio:(tail_ratio_predicted ~lambda ~retry_rate)
    ~suggested_dt:(Float.min 0.25 (1.0 /. (2.0 +. retry_rate)))
    ()
