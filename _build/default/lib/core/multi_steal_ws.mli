(** Stealing several tasks at once (Section 3.4).

    When a steal succeeds against a victim holding at least [T] tasks,
    [k] tasks move at once (the paper takes [k ≤ T/2], which we require,
    so a victim always retains at least [k ≥ 1] tasks and the gain/loss
    index ranges cannot overlap). A successful steal lifts the thief's
    levels [s₁ … s_k] and drops the victim's; the limiting system is

    {v
      ds₁/dt = λ(s₀-s₁) - (s₁-s₂)(1-s_T)
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1}) + (s₁-s₂)s_T,       2 ≤ i ≤ k
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1}),               k+1 ≤ i ≤ T-k
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1})
               - (s₁-s₂)(s_T - s_{i+k}),                  T-k+1 ≤ i ≤ T
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1})
               - (s₁-s₂)(sᵢ - s_{i+k}),                          i ≥ T+1
    v}

    (the victim-loss factor is [(s₁-s₂)·(s_{max(i,T)} - s_{max(i+k,T)})],
    which the displayed ranges spell out). With instantaneous transfers,
    stealing more per attempt only helps — quantified in experiment E7. *)

val model :
  lambda:float -> steal_count:int -> threshold:int -> ?dim:int -> unit ->
  Model.t
(** @raise Invalid_argument unless [1 ≤ steal_count] and
    [2·steal_count ≤ threshold]. *)
