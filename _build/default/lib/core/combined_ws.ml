open Numerics

let ipow x d =
  let rec go acc x d =
    if d = 0 then acc
    else if d land 1 = 1 then go (acc *. x) (x *. x) (d asr 1)
    else go acc (x *. x) (d asr 1)
  in
  go 1.0 x d

let deriv ~lambda ~t ~d ~k ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  let attempt = y.(1) -. y.(2) in
  let miss_all = ipow (1.0 -. get t) d in
  let success = 1.0 -. miss_all in
  dy.(0) <- 0.0;
  dy.(1) <- (lambda *. (y.(0) -. y.(1))) -. (attempt *. miss_all);
  for i = 2 to n - 1 do
    let arrive = lambda *. (y.(i - 1) -. y.(i)) in
    let drain = y.(i) -. get (i + 1) in
    let thief_gain = if i <= k then attempt *. success else 0.0 in
    let victim_loss =
      (* victims v with max(i, T) <= v <= i+k-1 drop below level i *)
      let a = max i t in
      let b = i + k - 1 in
      if b < a then 0.0
      else
        attempt
        *. (ipow (1.0 -. get (b + 1)) d -. ipow (1.0 -. get a) d)
    in
    dy.(i) <- arrive -. drain +. thief_gain -. victim_loss
  done

let model ~lambda ~threshold ~choices ~steal_count ?dim () =
  if choices < 1 then invalid_arg "Combined_ws: choices must be at least 1";
  if steal_count < 1 then
    invalid_arg "Combined_ws: steal_count must be at least 1";
  if threshold < steal_count + 1 then
    invalid_arg "Combined_ws: need threshold >= steal_count + 1";
  let dim =
    match dim with
    | Some d -> d
    | None ->
        max (threshold + steal_count + 8) (Tail.suggested_dim ~lambda ())
  in
  Model.of_single_tail
    ~name:
      (Printf.sprintf "combined_ws(lambda=%g, T=%d, d=%d, k=%d)" lambda
         threshold choices steal_count)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy ->
      deriv ~lambda ~t:threshold ~d:choices ~k:steal_count ~y ~dy)
    ()
