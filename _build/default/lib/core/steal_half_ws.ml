open Numerics

let deriv ~lambda ~t ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  let attempt = y.(1) -. y.(2) in
  let s_t = get t in
  dy.(0) <- 0.0;
  dy.(1) <- (lambda *. (y.(0) -. y.(1))) -. (attempt *. (1.0 -. s_t));
  for i = 2 to n - 1 do
    let arrive = lambda *. (y.(i - 1) -. y.(i)) in
    let drain = y.(i) -. get (i + 1) in
    let thief_gain = attempt *. get (max t (2 * i)) in
    let victim_loss =
      attempt *. (get (max i t) -. get (max ((2 * i) - 1) t))
    in
    dy.(i) <- arrive -. drain +. thief_gain -. victim_loss
  done

let model ~lambda ?(threshold = 2) ?dim () =
  if threshold < 2 then
    invalid_arg "Steal_half_ws: threshold must be at least 2";
  let dim =
    match dim with
    | Some d -> d
    | None -> max (threshold + 8) (Tail.suggested_dim ~lambda ())
  in
  Model.of_single_tail
    ~name:(Printf.sprintf "steal_half_ws(lambda=%g, T=%d)" lambda threshold)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~t:threshold ~y ~dy)
    ()
