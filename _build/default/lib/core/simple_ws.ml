open Numerics

let pi2_exact ~lambda =
  Root.solve_quadratic_smaller ~b:(-.(1.0 +. lambda)) ~c:(lambda *. lambda)

let tail_ratio_exact ~lambda =
  lambda /. (1.0 +. lambda -. pi2_exact ~lambda)

let deriv ~lambda ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let steal_rate = y.(1) -. y.(2) in
  dy.(0) <- 0.0;
  dy.(1) <- (lambda *. (y.(0) -. y.(1))) -. (steal_rate *. (1.0 -. y.(2)));
  for i = 2 to n - 1 do
    let next = if i + 1 < n then y.(i + 1) else Tail.ext y ~ratio (i + 1) in
    let drain = y.(i) -. next in
    dy.(i) <-
      (lambda *. (y.(i - 1) -. y.(i))) -. drain -. (drain *. steal_rate)
  done

let model ~lambda ?dim () =
  let dim =
    match dim with Some d -> d | None -> Tail.suggested_dim ~lambda ()
  in
  Model.of_single_tail
    ~name:(Printf.sprintf "simple_ws(lambda=%g)" lambda)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~y ~dy)
    ~predicted_tail_ratio:(fun s ->
      lambda /. (1.0 +. lambda -. s.(2)))
    ()

let fixed_point_exact ~lambda ~dim =
  if dim < 4 then invalid_arg "Simple_ws.fixed_point_exact: dim too small";
  let pi2 = pi2_exact ~lambda in
  let q = tail_ratio_exact ~lambda in
  Vec.init dim (fun i ->
      if i = 0 then 1.0
      else if i = 1 then lambda
      else pi2 *. (q ** float_of_int (i - 2)))

let mean_tasks_exact ~lambda =
  let pi2 = pi2_exact ~lambda in
  let q = tail_ratio_exact ~lambda in
  lambda +. (pi2 /. (1.0 -. q))

let mean_time_exact ~lambda = mean_tasks_exact ~lambda /. lambda
