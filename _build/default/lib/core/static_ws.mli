(** Static systems and load-dependent arrivals (Section 3.5).

    The paper closes Section 3.5 by noting two refinements of the arrival
    process: splitting [λ = λ_ext + λ_int] into externally arriving and
    internally spawned tasks (the latter possibly load-dependent), and the
    {e static} special case [λ_ext = 0, λ_int(0) = 0] — a system seeded
    with an initial batch of work that runs until all queues drain, whose
    limiting trajectory approximates the finishing time of large systems.

    This module builds models with a general per-load arrival-rate
    function [arrival i] (the rate at a processor currently holding [i]
    tasks) and the simple on-empty stealing rule with threshold [T], plus
    a drain-time reader. With [arrival] constant it coincides with
    {!Threshold_ws}. *)

val model :
  arrival:(int -> float) ->
  ?threshold:int ->
  ?stealing:bool ->
  ?initial_load:int ->
  dim:int ->
  unit ->
  Model.t
(** [initial_load] (default 0) seeds {!Model.initial_empty} with that many
    tasks at every processor (the static experiment's start). [stealing]
    defaults to [true], [threshold] to 2. The model's [throughput] is set
    to [arrival 1] as a Little's-law rate when arrivals are load-
    independent, and 0 (metrics disabled) otherwise. *)

val drain_time :
  ?dt:float -> ?eps:float -> ?horizon:float -> Model.t -> float option
(** First time at which the mean load per processor falls below [eps]
    (default [1e-3]) along the trajectory from [initial_empty] (which
    carries the seeded batch); [None] if [horizon] (default 500) is hit
    first. *)

val backlog_integral :
  ?dt:float -> ?horizon:float -> Model.t -> float
(** [∫₀^horizon E\[N\](t) dt] along the drain trajectory — the total
    waiting cost of the batch (per processor), a makespan-complementary
    metric for comparing drain policies. Default [horizon = 200]. *)
