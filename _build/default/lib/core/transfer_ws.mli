(** Stealing with transfer time (Section 3.2), with optionally
    Erlang-staged (near-constant) transfer delays.

    Moving a task from victim to thief takes time with mean [1/r]. A thief
    awaiting its stolen task does not steal again, so the state splits
    into the non-waiting tails [sᵢ] and waiting populations. With
    [stages = 1] the delay is exponential — exactly the system the paper
    displays; the equations (for threshold [T], attempt rate
    [A = s₁-s₂], victim pool [S_T = s_T + w_T]):

    {v
      ds₀/dt = r·w₀ - A·S_T
      ds₁/dt = λ(s₀-s₁) + r·w₀ - A
      dsᵢ/dt = λ(s_{i-1}-sᵢ) + r·w_{i-1} - (sᵢ-s_{i+1}),       2 ≤ i ≤ T-1
      dsᵢ/dt = λ(s_{i-1}-sᵢ) + r·w_{i-1} - (sᵢ-s_{i+1})(1+A),      i ≥ T
      dw₀/dt = -r·w₀ + A·S_T
      dwᵢ/dt = λ(w_{i-1}-wᵢ) - r·wᵢ - (wᵢ-w_{i+1})·(1 + [i≥T]·A),  i ≥ 1
    v}

    With [stages = k > 1] the delay is Erlang([k], rate [k·r]) — variance
    [1/(k·r²)], approaching the constant [1/r] as [k] grows, per §3.1's
    method of stages. The waiting population then splits by remaining
    stage, [w¹ … wᵏ]: fresh steals enter [w¹] at zero tasks, stage
    transitions move [wʲ → wʲ⁺¹] at rate [k·r], and completing the last
    stage delivers the task ([wᵏ at x tasks → s at x+1]). Waiting
    processors of every stage serve their local queues and remain valid
    victims throughout.

    Conservation: [s₀ + Σⱼ wʲ₀ = 1] always, and the busy identity
    [s₁ + Σⱼ wʲ₁ = λ] at the fixed point. Expected tasks per processor
    counts the in-transit task once per waiting processor. The paper's
    Table 3 (exponential delays) picks the best threshold per arrival
    rate; growing [k] shows how delay {e variability} (not just its mean)
    shifts that choice. *)

val model :
  lambda:float ->
  transfer_rate:float ->
  threshold:int ->
  ?stages:int ->
  ?depth:int ->
  unit ->
  Model.t
(** State dimension is [(stages+1)·(depth+1)]; [stages] defaults to 1
    (the paper's exponential-delay system), [depth] adapts to [λ].
    @raise Invalid_argument unless [transfer_rate > 0], [threshold ≥ 2]
    and [stages ≥ 1]. *)

val split : Model.t -> Numerics.Vec.t -> Numerics.Vec.t * Numerics.Vec.t
(** [(s, w)] where [w] aggregates all waiting stages: [wᵢ = Σⱼ wʲᵢ]. *)

val waiting_fraction : Model.t -> Numerics.Vec.t -> float
(** Total fraction of processors awaiting a stolen task. *)
