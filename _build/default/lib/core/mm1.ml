open Numerics

let deriv ~lambda ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  dy.(0) <- 0.0;
  for i = 1 to n - 1 do
    let next = if i + 1 < n then y.(i + 1) else Tail.ext y ~ratio (i + 1) in
    dy.(i) <- (lambda *. (y.(i - 1) -. y.(i))) -. (y.(i) -. next)
  done

let model ~lambda ?dim () =
  let dim =
    match dim with Some d -> d | None -> Tail.suggested_dim ~lambda ()
  in
  Model.of_single_tail ~name:(Printf.sprintf "mm1(lambda=%g)" lambda)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~y ~dy)
    ~predicted_tail_ratio:(fun _ -> lambda)
    ()

let fixed_point_exact ~lambda ~dim =
  Tail.geometric ~dim ~ratio:lambda ~mass:1.0

let mean_time_exact ~lambda =
  if lambda >= 1.0 then infinity else 1.0 /. (1.0 -. lambda)

let mean_tasks_exact ~lambda =
  if lambda >= 1.0 then infinity else lambda /. (1.0 -. lambda)
