open Numerics

let mean_tasks (m : Model.t) state = m.mean_tasks state
let mean_time = Model.mean_time

(* The default floor stays well above the truncation/relaxation noise
   region: entries below ~1e-9 can still carry warm-start residue when the
   max-norm residual test fires, which would bias the fit. *)
let empirical_tail_ratio ?(from = 4) ?(floor = 1e-9) s =
  let n = Vec.dim s in
  if from >= n - 1 || s.(from) <= floor then nan
  else begin
    let j = ref (n - 1) in
    while !j > from && s.(!j) <= floor do
      decr j
    done;
    if !j <= from then nan
    else (s.(!j) /. s.(from)) ** (1.0 /. float_of_int (!j - from))
  end

let tail_table ?(upto = 12) s =
  let n = Vec.dim s in
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((i, s.(i)) :: acc)
  in
  build (min upto (n - 1)) []
