open Numerics

let ipow x d =
  let rec go acc x d =
    if d = 0 then acc
    else if d land 1 = 1 then go (acc *. x) (x *. x) (d asr 1)
    else go acc (x *. x) (d asr 1)
  in
  go 1.0 x d

let deriv ~lambda ~d ~t ~y ~dy =
  let n = Vec.dim y in
  let ratio = Tail.boundary_ratio y in
  let get i = if i < n then y.(i) else Tail.ext y ~ratio i in
  let attempt = y.(1) -. y.(2) in
  let miss_all = ipow (1.0 -. get t) d in
  dy.(0) <- 0.0;
  dy.(1) <- (lambda *. (y.(0) -. y.(1))) -. (attempt *. miss_all);
  for i = 2 to n - 1 do
    let drain = y.(i) -. get (i + 1) in
    let arrive = lambda *. (y.(i - 1) -. y.(i)) in
    if i <= t - 1 then dy.(i) <- arrive -. drain
    else begin
      let hit = ipow (1.0 -. get (i + 1)) d -. ipow (1.0 -. y.(i)) d in
      dy.(i) <- arrive -. drain -. (hit *. attempt)
    end
  done

let model ~lambda ~choices ~threshold ?dim () =
  if choices < 1 then invalid_arg "Multi_choice_ws: choices must be >= 1";
  if threshold < 2 then
    invalid_arg "Multi_choice_ws: threshold must be at least 2";
  let dim =
    match dim with
    | Some d -> d
    | None -> max (threshold + 8) (Tail.suggested_dim ~lambda ())
  in
  Model.of_single_tail
    ~name:
      (Printf.sprintf "multi_choice_ws(lambda=%g, d=%d, T=%d)" lambda
         choices threshold)
    ~lambda ~dim
    ~deriv:(fun ~y ~dy -> deriv ~lambda ~d:choices ~t:threshold ~y ~dy)
    ()
