(** Repeated steal attempts (Section 2.5).

    As in the WS algorithm of Blumofe–Leiserson, a thief that fails keeps
    trying: empty processors make further steal attempts at exponential
    rate [r], and a victim must hold at least [T] tasks. Limiting system:

    {v
      ds₁/dt = λ(s₀-s₁) + r(s₀-s₁)s_T - (s₁-s₂)(1-s_T)
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1}),                   2 ≤ i ≤ T-1
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1})(1 + (s₁-s₂) + r(s₀-s₁)), i ≥ T
    v}

    At the fixed point the tails for [i ≥ T] decrease geometrically at
    rate [λ/(1 + r(1-λ) + λ - π₂)]; as [r → ∞] the fraction of processors
    at or above the threshold vanishes — a task above the threshold is
    stolen immediately. *)

val model :
  lambda:float -> retry_rate:float -> threshold:int -> ?dim:int -> unit ->
  Model.t
(** @raise Invalid_argument unless [retry_rate >= 0] and [threshold >= 2]. *)

val tail_ratio_predicted :
  lambda:float -> retry_rate:float -> Numerics.Vec.t -> float
(** [λ/(1 + r(1-λ) + λ - π₂)] evaluated on a state (using the fixed-point
    identities [π₀-π₁ = 1-λ]). *)
