(** The no-stealing reference system (Section 2.2's baseline).

    Each processor is an independent M/M/1 queue; the limiting equations
    are the paper's equation (1):
    [dsᵢ/dt = λ(s_{i-1} - sᵢ) - (sᵢ - s_{i+1})], with fixed point
    [πᵢ = λⁱ]. Every other model is compared against this baseline. *)

val model : lambda:float -> ?dim:int -> unit -> Model.t
(** @raise Invalid_argument unless [0 ≤ lambda < 1]. *)

val fixed_point_exact : lambda:float -> dim:int -> Numerics.Vec.t
(** [πᵢ = λⁱ]. *)

val mean_time_exact : lambda:float -> float
(** [E[T] = 1/(1-λ)] (M/M/1 with unit service rate). *)

val mean_tasks_exact : lambda:float -> float
(** [E[N] = λ/(1-λ)]. *)
