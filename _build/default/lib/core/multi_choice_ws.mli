(** Stealing with multiple victim choices (Section 3.3).

    Motivated by the power of two choices in load sharing, a thief probes
    [d] potential victims simultaneously and steals from the most loaded
    one if it is at or above the threshold [T]. With probability
    [(1-s_T)^d] all probes miss; a victim of load exactly [i ≥ T] is the
    maximum with probability [(1-s_{i+1})^d - (1-sᵢ)^d]. Limiting system:

    {v
      ds₁/dt = λ(s₀-s₁) - (s₁-s₂)(1-s_T)^d
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1}),                   2 ≤ i ≤ T-1
      dsᵢ/dt = λ(s_{i-1}-sᵢ) - (sᵢ-s_{i+1})
               - ((1-s_{i+1})^d - (1-sᵢ)^d)(s₁-s₂),                 i ≥ T
    v}

    [d = 1] recovers {!Threshold_ws}. The paper's Table 4 shows two
    choices help, especially near saturation, but one choice already
    captures most of the gain — steals can occur at most [d] times the
    single-choice rate, bounding the tail-ratio improvement by
    [λ/(1 + d(λ-π₂))]. *)

val model :
  lambda:float -> choices:int -> threshold:int -> ?dim:int -> unit ->
  Model.t
(** @raise Invalid_argument unless [choices >= 1] and [threshold >= 2]. *)
