(** Work stealing with hyperexponential (two-phase) service — the
    high-variability end of Section 3.1's programme.

    Section 3.1 observes that mixtures of exponential phases approximate
    any positive service distribution. {!Erlang_ws} covers the
    low-variance direction (constant service); this model covers the
    opposite: each service period is exponential of rate [mu1] with
    probability [p1], else of rate [mu2] — squared coefficient of
    variation above 1. Because the phase is drawn when service {e starts},
    the extra state per processor is just the phase of its in-service
    task: [uᵢ] ([vᵢ]) is the fraction of processors serving a phase-1
    (phase-2) task with at least [i] tasks in total. With
    [e = 1 - u₁ - v₁] the idle fraction, [A = μ₁(u₁-u₂) + μ₂(v₁-v₂)] the
    steal-attempt rate and [S_T = u_T + v_T] the victim pool:

    {v
      du₁/dt = λ·e·p₁ - μ₁(u₁-u₂)(1 - S_T·p₁) + μ₂(v₁-v₂)S_T·p₁
               - μ₁p₂u₂ + μ₂p₁v₂
      duₖ/dt = λ(u_{k-1}-uₖ) - μ₁(uₖ-u_{k+1}) - μ₁p₂u_{k+1} + μ₂p₁v_{k+1}
               - [k ≥ T]·A(uₖ-u_{k+1}),                              k ≥ 2
    v}

    and symmetrically for [v] (swap roles and probabilities). The
    class-switch flows ([μ₁p₂u_{k+1}] etc.) move a processor between the
    [u] and [v] populations when a completion draws the other phase for
    the next task; victims of steals keep their phase (the in-service task
    is never stolen). Derived here following the Section 2.2 recipe; the
    paper states the method and works the Erlang case. *)

val model :
  lambda:float ->
  p1:float ->
  mu1:float ->
  mu2:float ->
  ?threshold:int ->
  ?depth:int ->
  unit ->
  Model.t
(** Phase probabilities ([p1], [1-p1]) and rates. Requires
    [0 < p1 < 1], positive rates, and stability
    [λ·(p1/μ₁ + (1-p1)/μ₂) < 1]. [threshold] defaults to 2. *)

val of_service :
  lambda:float ->
  service:Prob.Dist.service ->
  ?threshold:int ->
  ?depth:int ->
  unit ->
  Model.t
(** Build from a {!Prob.Dist.Hyperexp} service description (normalised to
    mean 1 exactly as the simulator samples it), so model and simulation
    are parameterised identically. @raise Invalid_argument for other
    service families. *)

val split : Model.t -> Numerics.Vec.t -> Numerics.Vec.t * Numerics.Vec.t
(** [(u, v)] phase-population tails (index 0 is a placeholder 0). *)
