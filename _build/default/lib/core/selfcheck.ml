type report = {
  model_name : string;
  converged : bool;
  fixed_point_residual : float;
  fixed_point_valid : bool;
  trajectory_valid : bool;
  mean_tasks : float;
  mean_time : float;
  fitted_tail_ratio : float;
  predicted_tail_ratio : float option;
  tail_ratio_agrees : bool;
}

let passed r =
  r.converged && r.fixed_point_valid && r.trajectory_valid
  && r.fixed_point_residual < 1e-8 && r.tail_ratio_agrees

let run ?(horizon = 50.0) ?max_time (model : Model.t) =
  let fp = Drive.fixed_point ?max_time model in
  let state = fp.Drive.state in
  let trajectory_valid =
    Drive.trajectory ~start:`Empty ~horizon ~sample_every:(horizon /. 10.0)
      model
    |> List.for_all (fun (_, s) -> model.Model.validate s)
  in
  let fitted_tail_ratio = Metrics.empirical_tail_ratio state in
  let predicted_tail_ratio =
    Option.map (fun f -> f state) model.Model.predicted_tail_ratio
  in
  let tail_ratio_agrees =
    match predicted_tail_ratio with
    | None -> true
    | Some p ->
        Float.is_nan fitted_tail_ratio
        || Float.abs (p -. fitted_tail_ratio) < 0.01
  in
  {
    model_name = model.Model.name;
    converged = fp.Drive.converged;
    fixed_point_residual = fp.Drive.residual;
    fixed_point_valid = model.Model.validate state;
    trajectory_valid;
    mean_tasks = model.Model.mean_tasks state;
    mean_time = Model.mean_time model state;
    fitted_tail_ratio;
    predicted_tail_ratio;
    tail_ratio_agrees;
  }

let pp ppf r =
  let yesno b = if b then "ok" else "FAIL" in
  Format.fprintf ppf "model: %s@." r.model_name;
  Format.fprintf ppf "  fixed point:     %s (residual %.2e)@."
    (yesno (r.converged && r.fixed_point_residual < 1e-8))
    r.fixed_point_residual;
  Format.fprintf ppf "  state invariant: %s (fixed point), %s (trajectory)@."
    (yesno r.fixed_point_valid)
    (yesno r.trajectory_valid);
  Format.fprintf ppf "  E[N] = %.6f, E[T] = %.6f@." r.mean_tasks r.mean_time;
  (match r.predicted_tail_ratio with
  | Some p ->
      Format.fprintf ppf "  tail ratio:      %s (fitted %.5f, predicted %.5f)@."
        (yesno r.tail_ratio_agrees) r.fitted_tail_ratio p
  | None ->
      Format.fprintf ppf "  tail ratio:      fitted %.5f (no prediction)@."
        r.fitted_tail_ratio);
  Format.fprintf ppf "  verdict:         %s@."
    (if passed r then "PASSED" else "FAILED")
