type t = float array

let create n = Array.make n 0.0
let make = Array.make
let init = Array.init
let copy = Array.copy
let dim = Array.length
let fill v x = Array.fill v 0 (Array.length v) x

let check_dims name u v =
  if Array.length u <> Array.length v then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)"
                   name (Array.length u) (Array.length v))

let blit ~src ~dst =
  check_dims "blit" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let scale v a =
  for i = 0 to Array.length v - 1 do
    v.(i) <- v.(i) *. a
  done

let axpy y ~a ~x =
  check_dims "axpy" y x;
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let add y x =
  check_dims "add" y x;
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. x.(i)
  done

let sub y x =
  check_dims "sub" y x;
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) -. x.(i)
  done

let combine ~dst u ~a v =
  check_dims "combine" dst u;
  check_dims "combine" u v;
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- u.(i) +. (a *. v.(i))
  done

let dot u v =
  check_dims "dot" u v;
  let acc = ref 0.0 in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let norm_inf v =
  let m = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    let a = Float.abs v.(i) in
    if a > !m then m := a
  done;
  !m

let norm_l1 v =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. Float.abs v.(i)
  done;
  !acc

let norm_l2 v = sqrt (dot v v)

let dist_inf u v =
  check_dims "dist_inf" u v;
  let m = ref 0.0 in
  for i = 0 to Array.length u - 1 do
    let a = Float.abs (u.(i) -. v.(i)) in
    if a > !m then m := a
  done;
  !m

let dist_l1 u v =
  check_dims "dist_l1" u v;
  let acc = ref 0.0 in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. Float.abs (u.(i) -. v.(i))
  done;
  !acc

(* Kahan compensated summation: the mean-field tail sums mix magnitudes
   spanning many orders, so plain summation loses digits we care about. *)
let sum_from v i0 =
  let acc = ref 0.0 and comp = ref 0.0 in
  for i = i0 to Array.length v - 1 do
    let y = v.(i) -. !comp in
    let t = !acc +. y in
    comp := t -. !acc -. y;
    acc := t
  done;
  !acc

let sum v = sum_from v 0
let map f v = Array.map f v

let clamp v ~lo ~hi =
  for i = 0 to Array.length v - 1 do
    if v.(i) < lo then v.(i) <- lo else if v.(i) > hi then v.(i) <- hi
  done

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need at least 2 points";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (h *. float_of_int i))

let of_list = Array.of_list

let pp ppf v =
  Format.fprintf ppf "[@[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "@]]"
