lib/numerics/series.ml: Float List
