lib/numerics/fixpoint.mli: Vec
