lib/numerics/root.mli:
