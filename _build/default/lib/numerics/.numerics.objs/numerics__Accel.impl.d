lib/numerics/accel.ml: Array Float Vec
