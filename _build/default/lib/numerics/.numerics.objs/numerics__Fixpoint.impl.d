lib/numerics/fixpoint.ml: Array Float Vec
