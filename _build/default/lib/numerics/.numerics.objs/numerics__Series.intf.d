lib/numerics/series.mli:
