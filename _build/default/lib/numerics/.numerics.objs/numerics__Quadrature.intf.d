lib/numerics/quadrature.mli: Vec
