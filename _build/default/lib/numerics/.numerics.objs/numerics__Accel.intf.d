lib/numerics/accel.mli: Vec
