lib/numerics/interp.mli: Vec
