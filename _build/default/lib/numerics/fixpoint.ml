type outcome = Converged of int | Diverged of int

let scalar ?(damping = 1.0) ?(tol = 1e-14) ?(max_iter = 100_000) g ~x0 =
  let rec go x i =
    if i >= max_iter then (x, Diverged i)
    else begin
      let x' = ((1.0 -. damping) *. x) +. (damping *. g x) in
      if not (Float.is_finite x') then (x, Diverged i)
      else if Float.abs (x' -. x) <= tol then (x', Converged (i + 1))
      else go x' (i + 1)
    end
  in
  go x0 0

let vector ?(damping = 1.0) ?(tol = 1e-14) ?(max_iter = 100_000) g ~x0 =
  let x = Vec.copy x0 in
  let gx = Vec.create (Vec.dim x0) in
  let rec go i =
    if i >= max_iter then (x, Diverged i)
    else begin
      g ~src:x ~dst:gx;
      (* x <- (1-ω)x + ω·g(x), tracking the max update as we go. *)
      let delta = ref 0.0 in
      for j = 0 to Vec.dim x - 1 do
        let x' = ((1.0 -. damping) *. x.(j)) +. (damping *. gx.(j)) in
        let d = Float.abs (x' -. x.(j)) in
        if d > !delta then delta := d;
        x.(j) <- x'
      done;
      if not (Float.is_finite !delta) then (x, Diverged (i + 1))
      else if !delta <= tol then (x, Converged (i + 1))
      else go (i + 1)
    end
  in
  go 0
