let aitken x0 x1 x2 =
  let d1 = x1 -. x0 and d2 = x2 -. x1 in
  let dd = d2 -. d1 in
  if Float.abs dd <= 1e-300 || not (Float.is_finite dd) then x2
  else begin
    let est = x2 -. (d2 *. d2 /. dd) in
    if Float.is_finite est then est else x2
  end

let aitken_vec v0 v1 v2 =
  if Vec.dim v0 <> Vec.dim v1 || Vec.dim v1 <> Vec.dim v2 then
    invalid_arg "Accel.aitken_vec: dimension mismatch";
  Vec.init (Vec.dim v0) (fun i -> aitken v0.(i) v1.(i) v2.(i))

let dominant_ratio v0 v1 v2 =
  let n = Vec.dim v0 in
  if Vec.dim v1 <> n || Vec.dim v2 <> n then
    invalid_arg "Accel.dominant_ratio: dimension mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    let d1 = v1.(i) -. v0.(i) and d2 = v2.(i) -. v1.(i) in
    num := !num +. (d2 *. d1);
    den := !den +. (d1 *. d1)
  done;
  if !den <= 1e-300 then nan else !num /. !den

let extrapolate_dominant v0 v1 v2 =
  let rho = dominant_ratio v0 v1 v2 in
  if Float.is_nan rho || rho >= 1.0 || rho <= -1.0 then Vec.copy v2
  else begin
    let gain = rho /. (1.0 -. rho) in
    Vec.init (Vec.dim v2) (fun i ->
        v2.(i) +. ((v2.(i) -. v1.(i)) *. gain))
  end

let richardson ~order ~h_ratio coarse fine =
  if order <= 0 then invalid_arg "Accel.richardson: order must be positive";
  if h_ratio <= 1.0 then
    invalid_arg "Accel.richardson: h_ratio must exceed 1";
  let k = h_ratio ** float_of_int order in
  ((k *. fine) -. coarse) /. (k -. 1.0)
