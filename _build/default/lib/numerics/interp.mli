(** Interpolation of sampled functions.

    Trajectories come out of the integrators as discrete samples; these
    helpers evaluate them in between — linear for robustness, monotone
    cubic (Fritsch–Carlson PCHIP) when smooth derivatives matter and
    overshoot must be avoided (tail densities must stay monotone). *)

type t
(** An interpolant over strictly increasing abscissae. *)

val linear : xs:Vec.t -> ys:Vec.t -> t
(** Piecewise-linear interpolant. @raise Invalid_argument unless [xs] is
    strictly increasing and lengths match (≥ 2 points). *)

val pchip : xs:Vec.t -> ys:Vec.t -> t
(** Monotone piecewise-cubic Hermite interpolant (Fritsch–Carlson slope
    limiting): preserves monotonicity of the data on every interval, never
    overshoots. Same preconditions as {!linear}. *)

val eval : t -> float -> float
(** Evaluate; clamps outside the data range to the boundary values. *)

val eval_many : t -> Vec.t -> Vec.t
(** Map {!eval} over a vector of query points. *)
