(** Fixed-point iteration for scalar and vector maps.

    Used to solve the algebraic fixed-point systems [s = g(s)] that arise
    when setting [ds/dt = 0] in the mean-field equations, as an alternative
    (and cross-check) to long-horizon ODE relaxation. *)

type outcome = Converged of int | Diverged of int
    (** Payload: number of iterations performed. *)

val scalar :
  ?damping:float -> ?tol:float -> ?max_iter:int -> (float -> float) ->
  x0:float -> float * outcome
(** [scalar g ~x0] iterates [x <- (1-ω)·x + ω·g(x)] with damping [ω]
    (default [1.0]) until [|x' - x| ≤ tol] (default [1e-14]) or [max_iter]
    (default [100_000]) iterations. Returns the final iterate. *)

val vector :
  ?damping:float -> ?tol:float -> ?max_iter:int ->
  (src:Vec.t -> dst:Vec.t -> unit) -> x0:Vec.t -> Vec.t * outcome
(** [vector g ~x0] iterates the in-place map [g] with damping, stopping when
    [‖x' - x‖∞ ≤ tol]. [x0] is not mutated; a fresh result is returned. *)
