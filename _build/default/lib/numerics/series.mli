(** Series summation helpers for geometric-tail corrections.

    Fixed points of the paper's systems have geometrically decreasing tails
    (its central structural result); truncated state vectors are therefore
    closed with an analytic geometric remainder rather than by brute-force
    enlargement. *)

val geometric_tail : first:float -> ratio:float -> float
(** [geometric_tail ~first ~ratio] is [first / (1 - ratio)], the sum of
    [first·ratio^k] for [k ≥ 0]. @raise Invalid_argument unless
    [0 ≤ ratio < 1]. *)

val sum_until :
  ?tol:float -> ?max_terms:int -> (int -> float) -> int -> float
(** [sum_until f i0] sums [f i0 + f (i0+1) + …] with Kahan compensation
    until a term's magnitude drops below [tol] (default [1e-16]) or
    [max_terms] (default [1_000_000]) terms have been added. *)

val kahan_sum : float list -> float
(** Compensated sum of a list. *)
