(** Scalar root finding and stable quadratic solving.

    The closed-form fixed points of the paper (Sections 2.2–2.5) reduce to
    quadratics of the form [x² - (1+λ)x + q = 0] whose smaller root is the
    tail density; {!solve_quadratic_smaller} evaluates it in the
    cancellation-free form. The bracketing solvers back the numerically
    derived fixed points. *)

exception No_bracket
(** Raised by bracketing methods when [f a] and [f b] have the same sign. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> a:float -> b:float ->
  float
(** Bisection on a sign-changing bracket [[a, b]]. [tol] (default [1e-13])
    bounds the final bracket width. @raise No_bracket on a bad bracket. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> a:float -> b:float ->
  float
(** Brent's method (inverse quadratic interpolation + secant + bisection);
    superlinear and as robust as bisection. @raise No_bracket. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  float -> float
(** [newton ~f ~df x0] runs Newton–Raphson from [x0]. @raise Failure on
    divergence (NaN/∞ or iteration budget exhausted). *)

val solve_quadratic_smaller : b:float -> c:float -> float
(** Smaller real root of [x² + b·x + c = 0], computed via the stable
    formulation (no subtractive cancellation when the roots are of very
    different magnitudes). @raise Failure if the discriminant is negative
    beyond round-off. *)
