(** Convergence acceleration for linearly converging sequences.

    ODE relaxation toward a mean-field fixed point approaches it like
    [x(t) = x* + C·e^(-t/τ)]; three equally spaced samples determine [x*]
    by Aitken's Δ² formula. This shortens the long relaxation horizons
    needed at high arrival rates (λ close to 1). *)

val aitken : float -> float -> float -> float
(** [aitken x0 x1 x2] is the Aitken Δ² extrapolation of three successive
    terms of a linearly converging sequence. Falls back to [x2] when the
    second difference is too small for a stable update. *)

val aitken_vec : Vec.t -> Vec.t -> Vec.t -> Vec.t
(** Component-wise {!aitken} over three equally spaced state snapshots. *)

val dominant_ratio : Vec.t -> Vec.t -> Vec.t -> float
(** Power-method estimate of the dominant contraction ratio from three
    equally spaced snapshots: [⟨x₂-x₁, x₁-x₀⟩ / ⟨x₁-x₀, x₁-x₀⟩]. [nan]
    when the first difference vanishes. *)

val extrapolate_dominant : Vec.t -> Vec.t -> Vec.t -> Vec.t
(** Vector Shanks-type extrapolation assuming a single dominant mode with
    the {!dominant_ratio}: [x₂ + (x₂-x₁)·ρ/(1-ρ)]. More robust than
    per-component Aitken when component second differences are tiny.
    Falls back to [x₂] when the ratio is not in [(−1, 1)]. *)

val richardson : order:int -> h_ratio:float -> float -> float -> float
(** [richardson ~order ~h_ratio coarse fine] removes the leading
    [O(h^order)] error term from two approximations computed with step
    sizes [h] (giving [coarse]) and [h / h_ratio] (giving [fine]). *)
