(** Numerical integration.

    Used for integral performance metrics along trajectories — e.g. the
    total backlog cost [∫ E\[N\](t) dt] of a drain — and as a standalone
    substrate utility. *)

val trapezoid_samples : xs:Vec.t -> ys:Vec.t -> float
(** Trapezoid rule over (possibly unevenly spaced, strictly increasing)
    samples. @raise Invalid_argument on mismatch or fewer than 2 points. *)

val simpson : (float -> float) -> a:float -> b:float -> n:int -> float
(** Composite Simpson rule with [n] (even, ≥ 2) subintervals. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> a:float -> b:float ->
  float
(** Adaptive Simpson with the standard error estimate (default
    [tol = 1e-10], depth cap 50). *)
