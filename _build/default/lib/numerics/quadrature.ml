let trapezoid_samples ~xs ~ys =
  let n = Vec.dim xs in
  if n < 2 then invalid_arg "Quadrature.trapezoid_samples: need 2 points";
  if Vec.dim ys <> n then
    invalid_arg "Quadrature.trapezoid_samples: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 2 do
    let h = xs.(i + 1) -. xs.(i) in
    if h <= 0.0 then
      invalid_arg "Quadrature.trapezoid_samples: abscissae not increasing";
    acc := !acc +. (h *. (ys.(i) +. ys.(i + 1)) /. 2.0)
  done;
  !acc

let simpson f ~a ~b ~n =
  if n < 2 || n land 1 = 1 then
    invalid_arg "Quadrature.simpson: n must be even and >= 2";
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let x = a +. (h *. float_of_int i) in
    acc := !acc +. ((if i land 1 = 1 then 4.0 else 2.0) *. f x)
  done;
  !acc *. h /. 3.0

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 50) f ~a ~b =
  let simpson_third a fa b fb =
    let m = (a +. b) /. 2.0 in
    let fm = f m in
    (m, fm, (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb))
  in
  let rec go a fa b fb whole tol depth =
    let m, fm, _ = simpson_third a fa b fb in
    let _, _, left = simpson_third a fa m fm in
    let _, _, right = simpson_third m fm b fb in
    let delta = left +. right -. whole in
    if depth >= max_depth || Float.abs delta <= 15.0 *. tol then
      left +. right +. (delta /. 15.0)
    else
      go a fa m fm left (tol /. 2.0) (depth + 1)
      +. go m fm b fb right (tol /. 2.0) (depth + 1)
  in
  let fa = f a and fb = f b in
  let _, _, whole = simpson_third a fa b fb in
  go a fa b fb whole tol 0
