(** Dense vectors of unboxed floats.

    Thin helpers over [float array] used throughout the mean-field solvers.
    All in-place operations write into their first (destination) argument;
    all functions raise [Invalid_argument] on dimension mismatch. *)

type t = float array

val create : int -> t
(** [create n] is a fresh zero vector of dimension [n]. *)

val make : int -> float -> t
(** [make n x] is a fresh vector of dimension [n] filled with [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val copy : t -> t
(** Fresh copy. *)

val dim : t -> int
(** Dimension. *)

val fill : t -> float -> unit
(** [fill v x] sets every component of [v] to [x]. *)

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] copies [src] into [dst]. *)

val scale : t -> float -> unit
(** [scale v a] multiplies [v] by [a] in place. *)

val axpy : t -> a:float -> x:t -> unit
(** [axpy y ~a ~x] performs [y <- y + a*x] in place. *)

val add : t -> t -> unit
(** [add y x] performs [y <- y + x] in place. *)

val sub : t -> t -> unit
(** [sub y x] performs [y <- y - x] in place. *)

val combine : dst:t -> t -> a:float -> t -> unit
(** [combine ~dst u ~a v] sets [dst <- u + a*v] without clobbering [u] or
    [v] (aliasing [dst] with either argument is allowed). *)

val dot : t -> t -> float
(** Inner product. *)

val norm_inf : t -> float
(** Max-norm. *)

val norm_l1 : t -> float
(** Sum of absolute values. *)

val norm_l2 : t -> float
(** Euclidean norm. *)

val dist_inf : t -> t -> float
(** [dist_inf u v] is [norm_inf (u - v)] without allocating. *)

val dist_l1 : t -> t -> float
(** [dist_l1 u v] is [norm_l1 (u - v)] without allocating. *)

val sum : t -> float
(** Compensated (Kahan) sum of components. *)

val sum_from : t -> int -> float
(** [sum_from v i] is the compensated sum of components [i..dim-1]. *)

val map : (float -> float) -> t -> t
(** Fresh vector obtained by mapping. *)

val clamp : t -> lo:float -> hi:float -> unit
(** In-place clamp of every component into [[lo, hi]]. *)

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val of_list : float list -> t

val pp : Format.formatter -> t -> unit
(** Prints as [[x0; x1; ...]] with short float formatting. *)
