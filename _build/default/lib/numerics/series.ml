let geometric_tail ~first ~ratio =
  if ratio < 0.0 || ratio >= 1.0 then
    invalid_arg "Series.geometric_tail: ratio must lie in [0, 1)";
  first /. (1.0 -. ratio)

let sum_until ?(tol = 1e-16) ?(max_terms = 1_000_000) f i0 =
  let acc = ref 0.0 and comp = ref 0.0 in
  let i = ref i0 and continue = ref true in
  while !continue do
    let term = f !i in
    let y = term -. !comp in
    let t = !acc +. y in
    comp := t -. !acc -. y;
    acc := t;
    incr i;
    if Float.abs term < tol || !i - i0 >= max_terms then continue := false
  done;
  !acc

let kahan_sum xs =
  let acc = ref 0.0 and comp = ref 0.0 in
  List.iter
    (fun x ->
      let y = x -. !comp in
      let t = !acc +. y in
      comp := t -. !acc -. y;
      acc := t)
    xs;
  !acc
