(** Binary min-heap of timestamped events.

    The pending-event set of the discrete-event engine. Keys are float
    times; ties are broken by insertion order so that simultaneous events
    fire deterministically (FIFO), which keeps whole simulations
    reproducible from their seed. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event. @raise Invalid_argument on NaN time. *)

val peek_time : 'a t -> float option
(** Earliest event time, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event (FIFO among equal times). *)

val clear : 'a t -> unit
