lib/desim/engine.mli:
