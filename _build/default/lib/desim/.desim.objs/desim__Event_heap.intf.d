lib/desim/event_heap.mli:
