lib/desim/engine.ml: Event_heap
