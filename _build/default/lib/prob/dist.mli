(** Samplers for the distributions used in the paper's models.

    The dynamic model has Poisson arrivals and exponential service
    (Section 2.1); Section 3.1 studies constant service times, approximated
    in the differential equations by Erlang stages, and notes that any
    positive distribution can be approached by gamma mixtures — the
    {!service} type covers the family the simulator exercises. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with the given rate (mean [1/rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val erlang : Rng.t -> k:int -> rate:float -> float
(** Sum of [k] independent exponentials of rate [rate] (mean [k/rate]). *)

val poisson : Rng.t -> mean:float -> int
(** Poisson-distributed count. Multiplication method for small means,
    gaussian-free PTRD-style envelope is avoided by splitting large means
    into halves (exact, if slower, for the moderate means used here). *)

val uniform_range : Rng.t -> lo:float -> hi:float -> float

val geometric : Rng.t -> mean:float -> int
(** Geometric on [{1, 2, …}] with the given mean ([≥ 1]), by inversion;
    [mean = 1] is the constant 1. Batch sizes for bursty arrivals. *)

val pareto : Rng.t -> alpha:float -> xmin:float -> float
(** Pareto (heavy-tailed) sample by inversion; used in service-time
    sensitivity examples. @raise Invalid_argument unless [alpha > 0] and
    [xmin > 0]. *)

(** Service-time distribution family, all normalised to mean 1; the
    simulator divides samples by a processor's speed. *)
type service =
  | Exponential  (** Memoryless, mean 1: the paper's base model. *)
  | Deterministic  (** Constant 1: the Section 3.1 target distribution. *)
  | Erlang_stages of int
      (** [Erlang_stages c]: sum of [c] exponential stages of rate [c] —
          the paper's approximation of constant service. *)
  | Hyperexp of { p : float; mean1 : float; mean2 : float }
      (** Mixture: with probability [p] exponential of mean [mean1], else
          mean [mean2]; rescaled to overall mean 1. More variable than
          exponential. *)

val service_mean_one : Rng.t -> service -> float
(** One mean-1 service sample from the given family. *)

val service_scv : service -> float
(** Squared coefficient of variation of the family (variance at mean 1):
    1 for exponential, 0 for deterministic, [1/c] for Erlang stages. *)

val pp_service : Format.formatter -> service -> unit
