(** Online quantile estimation by the P² algorithm (Jain & Chlamtac,
    1985).

    Simulations produce tens of millions of sojourn samples; storing them
    to compute tail latencies is wasteful. P² maintains five markers whose
    heights track the target quantile with O(1) memory and O(1) update,
    converging to the true quantile for stationary inputs — accurate to a
    fraction of a percent at the sample sizes the tables use. *)

type t

val create : p:float -> t
(** Estimator for the [p]-quantile, [0 < p < 1]. *)

val add : t -> float -> unit
(** Feed one observation. *)

val count : t -> int

val quantile : t -> float
(** Current estimate; [nan] until five observations have been seen. *)

val p : t -> float
(** The target probability. *)
