(** Deterministic, splittable pseudo-random number generator.

    xoshiro256++ (Blackman & Vigna) seeded through SplitMix64. Every
    simulation stream in the repository is derived from a single root seed
    by {!split}, so all experiments are reproducible bit-for-bit across
    runs and platforms, independent of the OCaml standard library's
    generator. *)

type t
(** Mutable generator state. Not thread-safe; use one per stream. *)

val create : seed:int -> t
(** Generator deterministically initialised from [seed] via SplitMix64. *)

val split : t -> t
(** A new generator whose future output is (statistically) independent of
    the parent's. Advances the parent. Used to give each replication and
    each processor-independent stream its own generator. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [[0, 1)], with 53 random bits of mantissa. *)

val float_pos : t -> float
(** Uniform in [(0, 1]]; safe to pass to [log]. *)

val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound)] (rejection sampling; no
    modulo bias). @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val copy : t -> t
(** Snapshot of the current state (same future output as the original). *)
