(** Streaming and batch summary statistics.

    Welford's online algorithm keeps sojourn-time accumulation numerically
    stable over the tens of millions of samples a long simulation produces;
    replication summaries feed the tables' mean ± confidence columns. *)

type t
(** Mutable streaming accumulator (count, mean, M2). *)

val create : unit -> t
val reset : t -> unit
val add : t -> float -> unit
val count : t -> int
val total : t -> float

val mean : t -> float
(** Mean of the samples so far; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (divisor [n-1]); [nan] when [n < 2]. *)

val stddev : t -> float

val ci95_halfwidth : t -> float
(** Half-width of a normal-approximation 95% confidence interval for the
    mean, [1.96·s/√n]; [nan] when [n < 2]. *)

val merge : t -> t -> t
(** Combined accumulator over both sample sets (Chan et al. update). *)

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Batch summary; [mean]/[std]/extrema are [nan] on the empty array. *)

val quantile : float array -> float -> float
(** [quantile xs p] with [p ∈ [0,1]], linear interpolation between order
    statistics; sorts a copy. @raise Invalid_argument on empty input or
    [p] outside [[0,1]]. *)

val pp_summary : Format.formatter -> summary -> unit
