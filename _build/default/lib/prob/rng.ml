type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

(* SplitMix64: used only for seeding and splitting, where its weaker
   equidistribution does not matter. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_splitmix state =
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  (* The all-zero state is a fixed point of xoshiro; SplitMix64 outputs are
     never all zero in practice, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create ~seed = of_splitmix (ref (Int64.of_int seed))

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  (* Feed fresh parent output through SplitMix64 so parent and child do not
     share correlated xoshiro states. *)
  let mix = ref (bits64 g) in
  of_splitmix mix

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let two53_inv = 1.0 /. 9007199254740992.0 (* 2^-53 *)

let float g =
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. two53_inv

let float_pos g = 1.0 -. float g

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.shift_right_logical (bits64 g) 2) land (bound - 1)
  else begin
    (* rejection sampling on 62 bits to avoid modulo bias *)
    let rec draw () =
      let r =
        Int64.to_int (Int64.shift_right_logical (bits64 g) 2)
        land max_int
      in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end

let bool g = Int64.logand (bits64 g) 1L = 1L
