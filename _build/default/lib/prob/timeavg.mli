(** Time-weighted average of a piecewise-constant signal.

    Steady-state queue-length measurements (the [E\[N\]] side of Little's
    law) are time averages of the instantaneous total load; this
    accumulator integrates a right-continuous step signal exactly. *)

type t

val create : ?start:float -> ?value:float -> unit -> t
(** Accumulator starting at time [start] (default 0) with the signal at
    [value] (default 0). *)

val update : t -> now:float -> value:float -> unit
(** Record that the signal held its previous value on [[last, now)] and
    takes [value] from [now] on. [now] must be non-decreasing across
    calls. *)

val shift : t -> now:float -> delta:float -> unit
(** Convenience: {!update} with the previous value plus [delta]. *)

val current : t -> float
(** The signal's current value. *)

val reset : t -> now:float -> unit
(** Forget the accumulated integral (keeping the current value); used when
    the warm-up period ends. *)

val average : t -> upto:float -> float
(** Time average of the signal on [[start, upto]]; [nan] when the window is
    empty. *)
