lib/prob/p2_quantile.mli:
