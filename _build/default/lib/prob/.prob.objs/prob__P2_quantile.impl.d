lib/prob/p2_quantile.ml: Array Float
