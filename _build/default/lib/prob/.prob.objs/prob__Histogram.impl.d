lib/prob/histogram.ml: Array Format String
