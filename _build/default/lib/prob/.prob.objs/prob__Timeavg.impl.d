lib/prob/timeavg.ml:
