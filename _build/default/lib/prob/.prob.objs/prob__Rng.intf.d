lib/prob/rng.mli:
