lib/prob/timeavg.mli:
