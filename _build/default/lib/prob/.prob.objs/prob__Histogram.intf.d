lib/prob/histogram.mli: Format
