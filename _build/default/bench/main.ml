(* Benchmark harness: regenerates every table of the paper (plus the E5-E9
   studies implied by its analysis sections) and, with the "kernels"
   argument, times the computational kernels behind each table with
   Bechamel.

   Usage:
     main.exe                      run every experiment at default fidelity
     main.exe table1 table3 ...    run selected experiments
     main.exe --quick / --paper    fidelity presets
     main.exe --seed N             override root seed
     main.exe kernels              Bechamel micro-benchmarks, one per table
*)

let usage () =
  print_endline
    "usage: main.exe [kernels] [experiment ...] [--quick|--paper] [--seed N]";
  print_endline "experiments:";
  List.iter
    (fun e ->
      Printf.printf "  %-10s %s\n" e.Experiments.Registry.name
        e.Experiments.Registry.paper_ref)
    Experiments.Registry.all

(* ---------- Bechamel kernels ---------- *)

let kernel_tests () =
  let open Bechamel in
  (* Table 1 kernel: the closed-form fixed point plus an ODE relaxation of
     the simple system at moderate truncation. *)
  let table1 =
    Test.make ~name:"table1/simple-fixed-point"
      (Staged.stage (fun () ->
           let m = Meanfield.Simple_ws.model ~lambda:0.7 ~dim:64 () in
           let fp = Meanfield.Drive.fixed_point ~tol:1e-9 m in
           ignore (Meanfield.Model.mean_time m fp.Meanfield.Drive.state)))
  in
  (* Table 2 kernel: one derivative evaluation of the c = 20 stage system
     (the dominating cost of the constant-service estimates). *)
  let table2 =
    let m = Meanfield.Erlang_ws.model ~lambda:0.9 ~stages:20 () in
    let y = m.Meanfield.Model.initial_warm () in
    let dy = Array.make m.Meanfield.Model.dim 0.0 in
    Test.make ~name:"table2/erlang-c20-deriv"
      (Staged.stage (fun () -> m.Meanfield.Model.deriv ~y ~dy))
  in
  (* Table 3 kernel: derivative of the two-vector transfer system. *)
  let table3 =
    let m =
      Meanfield.Transfer_ws.model ~lambda:0.9 ~transfer_rate:0.25
        ~threshold:4 ()
    in
    let y = m.Meanfield.Model.initial_warm () in
    let dy = Array.make m.Meanfield.Model.dim 0.0 in
    Test.make ~name:"table3/transfer-deriv"
      (Staged.stage (fun () -> m.Meanfield.Model.deriv ~y ~dy))
  in
  (* Table 4 kernel: a simulation slice of the two-choice system — the
     simulation side dominates Table 4's cost. *)
  let table4 =
    Test.make ~name:"table4/sim-2choice-slice"
      (Staged.stage
         (let counter = ref 0 in
          fun () ->
            incr counter;
            let rng = Prob.Rng.create ~seed:(0x7ab1e4 + !counter) in
            let sim =
              Wsim.Cluster.create ~rng
                {
                  Wsim.Cluster.default with
                  n = 16;
                  arrival_rate = 0.9;
                  policy =
                    Wsim.Policy.On_empty
                      { threshold = 2; choices = 2; steal_count = 1 };
                }
            in
            ignore (Wsim.Cluster.run sim ~horizon:50.0 ~warmup:0.0)))
  in
  (* Substrate kernels. *)
  let rk4 =
    let sys =
      Meanfield.Model.as_system
        (Meanfield.Simple_ws.model ~lambda:0.9 ~dim:256 ())
    in
    let ws = Numerics.Ode.workspace sys in
    let y = Meanfield.Tail.geometric ~dim:256 ~ratio:0.9 ~mass:1.0 in
    Test.make ~name:"substrate/rk4-step-dim256"
      (Staged.stage (fun () ->
           Numerics.Ode.rk4_step sys ws ~t:0.0 ~dt:0.1 y))
  in
  let heap =
    let h = Desim.Event_heap.create () in
    let rng = Prob.Rng.create ~seed:99 in
    Test.make ~name:"substrate/event-heap-push-pop"
      (Staged.stage (fun () ->
           for _ = 1 to 64 do
             Desim.Event_heap.push h ~time:(Prob.Rng.float rng) 0
           done;
           for _ = 1 to 64 do
             ignore (Desim.Event_heap.pop h)
           done))
  in
  let rng_test =
    let rng = Prob.Rng.create ~seed:1 in
    Test.make ~name:"substrate/rng-exponential"
      (Staged.stage (fun () ->
           ignore (Prob.Dist.exponential rng ~rate:1.0)))
  in
  [ table1; table2; table3; table4; rk4; heap; rng_test ]

let run_kernels () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let tests =
    Test.make_grouped ~name:"loadsteal" ~fmt:"%s %s" (kernel_tests ())
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  (* Plain-text report: OLS estimate of ns/run for the monotonic clock. *)
  print_endline "kernel benchmarks (ns per run, OLS fit):";
  match Hashtbl.find_opt results (Measure.label Toolkit.Instance.monotonic_clock) with
  | None -> print_endline "  (no results)"
  | Some by_test ->
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (x :: _) -> x
              | Some [] | None -> nan
            in
            (name, est) :: acc)
          by_test []
        |> List.sort compare
      in
      List.iter
        (fun (name, est) -> Printf.printf "  %-40s %14.1f\n" name est)
        rows

(* ---------- driver ---------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let paper = List.mem "--paper" args in
  let seed =
    let rec find = function
      | "--seed" :: v :: _ -> Some (int_of_string v)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let names =
    List.filter
      (fun a -> (not (String.length a >= 2 && String.sub a 0 2 = "--"))
                && (match seed with
                    | Some s -> a <> string_of_int s
                    | None -> true))
      args
  in
  if List.mem "help" names || List.mem "-h" args || List.mem "--help" args
  then usage ()
  else begin
    let scope =
      let base =
        if quick then Experiments.Scope.quick
        else if paper then Experiments.Scope.paper
        else Experiments.Scope.default
      in
      match seed with
      | Some s -> { base with Experiments.Scope.seed = s }
      | None -> base
    in
    let ppf = Format.std_formatter in
    let t0 = Unix.gettimeofday () in
    let names, want_kernels =
      if List.mem "kernels" names then
        (List.filter (fun n -> n <> "kernels") names, true)
      else (names, false)
    in
    (match names with
    | [] when want_kernels -> ()
    | [] -> Experiments.Registry.run_all scope ppf
    | names ->
        List.iter
          (fun name ->
            match Experiments.Registry.find name with
            | Some e ->
                Format.fprintf ppf "=== %s — %s ===@.@."
                  e.Experiments.Registry.name e.Experiments.Registry.paper_ref;
                e.Experiments.Registry.print scope ppf
            | None ->
                Format.fprintf ppf "unknown experiment %S@." name;
                usage ();
                exit 2)
          names);
    if want_kernels then run_kernels ();
    Format.fprintf ppf "total wall time: %.1f s@."
      (Unix.gettimeofday () -. t0)
  end
